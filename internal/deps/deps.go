// Package deps implements the selective-recompilation machinery of
// §3.7.1 of the paper: "our compiler maintains fine-grained dependency
// information to selectively recompile those pieces of the program that
// are invalidated as a result of some change to the class hierarchy or
// the set of methods in the program. The dependency information forms a
// directed, acyclic graph, with nodes representing pieces of
// information, and edges representing dependencies."
//
// Nodes represent sources of information (a class declaration, a
// generic function's method set, a method body) and clients (compiled
// method versions). Invalidation propagates downstream; the set of
// invalid version nodes is exactly what an incremental compiler must
// recompile.
package deps

import (
	"fmt"
	"sort"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/opt"
)

// Kind classifies a dependency node.
type Kind int

// Node kinds.
const (
	// KindClass is the declaration of one class (its parents, fields
	// and declared field types).
	KindClass Kind = iota
	// KindGF is the method set of one generic function (which methods
	// exist and their specializers) — the information static binding
	// and ApplicableClasses consume.
	KindGF
	// KindBody is the source body of one method.
	KindBody
	// KindVersion is one compiled method version (client node).
	KindVersion
)

var kindNames = [...]string{"class", "gf", "body", "version"}

func (k Kind) String() string { return kindNames[k] }

// Node is one vertex of the dependency graph.
type Node struct {
	Kind Kind
	Name string
}

// ID returns the canonical node identifier.
func (n Node) ID() string { return n.Kind.String() + ":" + n.Name }

// Graph is a dependency DAG with validity tracking. It is constructed
// incrementally (AddDep) as compilation consumes information, exactly
// as the paper describes.
type Graph struct {
	nodes   map[string]Node
	clients map[string]map[string]bool // provider ID → dependent IDs
	invalid map[string]bool
}

// NewGraph returns an empty dependency graph.
func NewGraph() *Graph {
	return &Graph{
		nodes:   map[string]Node{},
		clients: map[string]map[string]bool{},
		invalid: map[string]bool{},
	}
}

// ensure registers a node.
func (g *Graph) ensure(n Node) string {
	id := n.ID()
	if _, ok := g.nodes[id]; !ok {
		g.nodes[id] = n
		g.clients[id] = map[string]bool{}
	}
	return id
}

// AddDep records that client depends on provider: whenever provider is
// invalidated, client is too.
func (g *Graph) AddDep(client, provider Node) {
	c := g.ensure(client)
	p := g.ensure(provider)
	g.clients[p][c] = true
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Edges returns the number of dependency edges.
func (g *Graph) Edges() int {
	n := 0
	for _, cs := range g.clients {
		n += len(cs)
	}
	return n
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []Node {
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Node, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id]
	}
	return out
}

// Invalidate marks the node and everything transitively depending on it
// invalid, returning the newly invalidated nodes sorted by ID ("the
// compiler computes what source dependency nodes have been affected and
// propagates invalidations downstream").
func (g *Graph) Invalidate(n Node) []Node {
	start := n.ID()
	if _, ok := g.nodes[start]; !ok {
		return nil
	}
	var affectedIDs []string
	seen := map[string]bool{}
	stack := []string{start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if !g.invalid[id] {
			g.invalid[id] = true
			affectedIDs = append(affectedIDs, id)
		}
		for c := range g.clients[id] {
			stack = append(stack, c)
		}
	}
	sort.Strings(affectedIDs)
	out := make([]Node, len(affectedIDs))
	for i, id := range affectedIDs {
		out[i] = g.nodes[id]
	}
	return out
}

// Invalid reports whether a node is currently invalid.
func (g *Graph) Invalid(n Node) bool { return g.invalid[n.ID()] }

// InvalidVersions lists the compiled versions that must be recompiled.
func (g *Graph) InvalidVersions() []Node {
	var out []Node
	for id := range g.invalid {
		if n := g.nodes[id]; n.Kind == KindVersion {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Revalidate clears a node's invalid mark (after recompilation).
func (g *Graph) Revalidate(n Node) { delete(g.invalid, n.ID()) }

// ClassNode, GFNode, BodyNode and VersionNode build canonical nodes.
func ClassNode(name string) Node  { return Node{Kind: KindClass, Name: name} }
func GFNode(key string) Node      { return Node{Kind: KindGF, Name: key} }
func BodyNode(method string) Node { return Node{Kind: KindBody, Name: method} }
func VersionNode(v string) Node   { return Node{Kind: KindVersion, Name: v} }
func versionName(v *ir.Version) string {
	return fmt.Sprintf("%s#%d", v.Method.Name(), v.Index)
}

// FromCompiled constructs the dependency graph of a compiled program:
// every compiled version depends on
//
//   - its method's source body,
//   - the method sets of every generic function it still sends to or
//     statically binds (adding/removing a method there changes the
//     binding decision),
//   - the declarations of every class named in its specialization
//     tuple's specializer ancestry (conservatively: the classes of the
//     method's specializers), and
//   - the declarations of classes whose fields it touches (field
//     layout and declared types).
func FromCompiled(c *opt.Compiled) *Graph {
	g := NewGraph()
	for _, m := range c.Prog.H.Methods() {
		for _, v := range c.VersionsOf(m) {
			if v.Body == nil {
				continue // lazy version never compiled: nothing to invalidate
			}
			vn := VersionNode(versionName(v))
			g.AddDep(vn, BodyNode(m.Name()))
			for _, spec := range m.Specs {
				g.AddDep(vn, ClassNode(spec.Name))
			}
			// The source body records every send whose binding decision
			// was consumed during compilation — including sends that were
			// inlined away entirely.
			if src := c.Prog.Bodies[m]; src != nil {
				for _, site := range src.Sites {
					g.AddDep(vn, GFNode(site.GF.Key()))
				}
			}
			ir.Walk(v.Body, func(n ir.Node) bool {
				switch n := n.(type) {
				case *ir.Send:
					g.AddDep(vn, GFNode(n.Site.GF.Key()))
				case *ir.StaticCall:
					g.AddDep(vn, GFNode(n.Site.GF.Key()))
					// Bound callee: its body matters too.
					g.AddDep(vn, BodyNode(n.Target.Method.Name()))
				case *ir.VersionSelect:
					g.AddDep(vn, GFNode(n.Site.GF.Key()))
				case *ir.GetField:
					g.addFieldDeps(c.Prog.H, vn, n.Name)
				case *ir.SetField:
					g.addFieldDeps(c.Prog.H, vn, n.Name)
				case *ir.New:
					g.AddDep(vn, ClassNode(n.Class.Name))
				}
				// A site from a different method proves that method's
				// body was inlined here.
				if site := siteOf(n); site != nil && site.Caller != nil && site.Caller != m {
					g.AddDep(vn, BodyNode(site.Caller.Name()))
				}
				return true
			})
		}
	}
	// GF method sets depend on the classes their specializers name
	// (changing a class edits ApplicableClasses of every method there)
	// and, coarsely, on their methods' bodies: a body edit can change a
	// callee that callers inlined without leaving any trace in their
	// compiled IR. This coupling keeps invalidation sound.
	for _, gf := range c.Prog.H.GFs() {
		gn := GFNode(gf.Key())
		for _, m := range gf.Methods {
			for _, spec := range m.Specs {
				g.AddDep(gn, ClassNode(spec.Name))
			}
			g.AddDep(gn, BodyNode(m.Name()))
		}
	}
	return g
}

// siteOf extracts the call site of call-like IR nodes.
func siteOf(n ir.Node) *ir.CallSite {
	switch n := n.(type) {
	case *ir.Send:
		return n.Site
	case *ir.StaticCall:
		return n.Site
	case *ir.VersionSelect:
		return n.Site
	}
	return nil
}

// MethodChanged invalidates everything affected by editing the body of
// the named method belonging to the given generic function.
func (g *Graph) MethodChanged(methodName, gfKey string) []Node {
	a := g.Invalidate(BodyNode(methodName))
	b := g.Invalidate(GFNode(gfKey))
	return append(a, b...)
}

// addFieldDeps makes vn depend on every class declaring a field with
// this name (layout or declared-type changes invalidate the access).
func (g *Graph) addFieldDeps(h *hier.Hierarchy, vn Node, field string) {
	for _, cls := range h.Classes() {
		for _, f := range cls.OwnFields {
			if f.Name == field {
				g.AddDep(vn, ClassNode(cls.Name))
			}
		}
	}
}
