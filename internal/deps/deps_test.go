package deps

import (
	"strings"
	"testing"

	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/opt"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddDep(VersionNode("v1"), BodyNode("m"))
	g.AddDep(VersionNode("v2"), BodyNode("m"))
	g.AddDep(VersionNode("v2"), ClassNode("C"))
	g.AddDep(BodyNode("m"), ClassNode("C")) // body mentions class C

	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Edges() != 4 {
		t.Fatalf("Edges = %d", g.Edges())
	}

	affected := g.Invalidate(ClassNode("C"))
	// C → {body:m, version:v2} and body:m → {v1, v2}: all 4 nodes.
	if len(affected) != 4 {
		t.Fatalf("affected = %v", affected)
	}
	if !g.Invalid(VersionNode("v1")) || !g.Invalid(VersionNode("v2")) {
		t.Error("versions not invalidated")
	}
	iv := g.InvalidVersions()
	if len(iv) != 2 || iv[0].Name != "v1" || iv[1].Name != "v2" {
		t.Fatalf("InvalidVersions = %v", iv)
	}

	g.Revalidate(VersionNode("v1"))
	if g.Invalid(VersionNode("v1")) {
		t.Error("Revalidate failed")
	}
	// Re-invalidating an already invalid node adds nothing new.
	if again := g.Invalidate(BodyNode("m")); len(again) != 1 || again[0].Name != "v1" {
		t.Fatalf("second invalidate = %v", again)
	}
}

func TestInvalidateUnknownNode(t *testing.T) {
	g := NewGraph()
	if got := g.Invalidate(ClassNode("nope")); got != nil {
		t.Fatalf("Invalidate(unknown) = %v", got)
	}
}

const progSrc = `
class A
class B isa A
class P { field x : Int := 0; }
method m(o@A) { 1; }
method m(o@B) { 2; }
method helper(o@A) { 41; }
method caller(o@A) { o.m(); o.helper(); }
method touch(p@P) { p.x; }
method main() { caller(new B()); touch(new P(1)); }
`

func buildGraph(t *testing.T) (*opt.Compiled, *Graph) {
	t.Helper()
	prog, err := ir.Lower(lang.MustParse(progSrc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := opt.Compile(prog, opt.Options{Config: opt.CHA})
	if err != nil {
		t.Fatal(err)
	}
	return c, FromCompiled(c)
}

func TestFromCompiledStructure(t *testing.T) {
	_, g := buildGraph(t)
	if g.Len() == 0 || g.Edges() == 0 {
		t.Fatal("empty graph")
	}
	var hasCaller, hasGFm bool
	for _, n := range g.Nodes() {
		if n.Kind == KindVersion && strings.HasPrefix(n.Name, "caller") {
			hasCaller = true
		}
		if n.Kind == KindGF && n.Name == "m/1" {
			hasGFm = true
		}
	}
	if !hasCaller || !hasGFm {
		t.Fatalf("expected caller version and m/1 GF nodes:\n%v", g.Nodes())
	}
}

// TestAddingMethodInvalidatesBoundCallers mirrors the paper's scenario:
// a change to a generic function's method set invalidates exactly the
// compiled code whose binding decisions consumed that information.
func TestAddingMethodInvalidatesBoundCallers(t *testing.T) {
	_, g := buildGraph(t)

	// "Adding a method to helper/1" — invalidate its GF node.
	affected := g.Invalidate(GFNode("helper/1"))
	names := map[string]bool{}
	for _, n := range affected {
		names[n.ID()] = true
	}
	// caller statically bound (and/or inlined) helper: must recompile.
	foundCaller := false
	for id := range names {
		if strings.HasPrefix(id, "version:caller") {
			foundCaller = true
		}
	}
	if !foundCaller {
		t.Fatalf("caller's version not invalidated: %v", affected)
	}
	// touch never consumed helper/1: must stay valid.
	for id := range names {
		if strings.HasPrefix(id, "version:touch") {
			t.Fatalf("touch's version spuriously invalidated: %v", affected)
		}
	}
}

func TestClassChangeInvalidatesFieldUsers(t *testing.T) {
	_, g := buildGraph(t)
	affected := g.Invalidate(ClassNode("P"))
	foundTouch := false
	for _, n := range affected {
		if n.Kind == KindVersion && strings.HasPrefix(n.Name, "touch") {
			foundTouch = true
		}
	}
	if !foundTouch {
		t.Fatalf("touch must be invalidated by a change to class P: %v", affected)
	}
}

func TestClassChangePropagatesThroughGF(t *testing.T) {
	_, g := buildGraph(t)
	// Changing class B invalidates m/1's method-set info (B specializes
	// m), which invalidates everything that sends m.
	affected := g.Invalidate(ClassNode("B"))
	found := false
	for _, n := range affected {
		if n.Kind == KindVersion && strings.HasPrefix(n.Name, "caller") {
			found = true
		}
	}
	if !found {
		t.Fatalf("caller not invalidated by class B change: %v", affected)
	}
}

func TestKindStrings(t *testing.T) {
	if KindClass.String() != "class" || KindVersion.String() != "version" {
		t.Error("kind names wrong")
	}
	if ClassNode("X").ID() != "class:X" {
		t.Errorf("ID = %q", ClassNode("X").ID())
	}
}
