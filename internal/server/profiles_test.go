package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"selspec/internal/driver"
	"selspec/internal/profdb"
	"selspec/internal/profile"
	"selspec/internal/programs"
)

// benchProfileJSON builds a small valid profile for a registered
// benchmark by recording a couple of real arcs against its IR.
func benchProfileJSON(t *testing.T, bench string, weight int64) []byte {
	t.Helper()
	b, ok := programs.ByName(bench)
	if !ok {
		t.Fatalf("benchmark %q not registered", bench)
	}
	p, err := driver.LoadNamed(b.Name, b.Source)
	if err != nil {
		t.Fatal(err)
	}
	cg := profile.NewCallGraph(p.Prog)
	cg.Record(p.Prog.Sites[0], p.Prog.H.Methods()[0], weight)
	cg.Record(p.Prog.Sites[1], p.Prog.H.Methods()[0], weight*2)
	data, err := cg.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func profServer(t *testing.T, cfg Config) (*httptest.Server, *profdb.DB) {
	t.Helper()
	if cfg.ProfileDB == nil {
		db, err := profdb.Open(t.TempDir(), profdb.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		cfg.ProfileDB = db
	}
	ts := httptest.NewServer(New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts, cfg.ProfileDB
}

func postProfile(t *testing.T, ts *httptest.Server, bench string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/profiles/"+bench, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestProfileIngestExportRoundTrip(t *testing.T) {
	ts, db := profServer(t, Config{})
	up := benchProfileJSON(t, "Richards", 10)

	code, body := postProfile(t, ts, "Richards", up)
	if code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", code, body)
	}
	var ack IngestResponse
	if err := json.Unmarshal(body, &ack); err != nil || ack.Seq != 1 || ack.Program != "Richards" {
		t.Fatalf("ack = %s (err %v)", body, err)
	}
	// Second upload merges.
	if code, _ := postProfile(t, ts, "Richards", up); code != http.StatusOK {
		t.Fatalf("second ingest = %d", code)
	}

	resp, err := ts.Client().Get(ts.URL + "/profiles/Richards")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	exported, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export = %d: %s", resp.StatusCode, exported)
	}
	w, err := profile.ParseWire(exported)
	if err != nil {
		t.Fatalf("export not parseable: %v", err)
	}
	if len(w.Arcs) != 2 || w.Arcs[0].Weight != 20 || w.Arcs[1].Weight != 40 {
		t.Fatalf("aggregate arcs = %+v, want doubled weights", w.Arcs)
	}
	// The acked uploads are durable in the database too.
	if got := db.Stats().Seq; got != 2 {
		t.Fatalf("db seq = %d", got)
	}
}

func TestProfileIngestValidation(t *testing.T) {
	ts, db := profServer(t, Config{})

	// Unknown benchmark.
	if code, body := postProfile(t, ts, "NoSuchBench", []byte(`{"version":1,"arcs":[]}`)); code != http.StatusNotFound {
		t.Fatalf("unknown bench = %d: %s", code, body)
	}
	// Malformed profile.
	code, body := postProfile(t, ts, "Richards", []byte(`{nope`))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("malformed = %d: %s", code, body)
	}
	var eb ErrorBody
	json.Unmarshal(body, &eb)
	if eb.Kind != KindBadProfile {
		t.Fatalf("kind = %q", eb.Kind)
	}
	// A profile whose ids don't exist in the bound program.
	bad := []byte(`{"version":1,"arcs":[{"site":99999,"callee":0,"weight":1}]}`)
	if code, _ := postProfile(t, ts, "Richards", bad); code != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-range profile = %d", code)
	}
	// Nothing reached the log.
	if db.Stats().Seq != 0 {
		t.Fatalf("rejects were logged: seq = %d", db.Stats().Seq)
	}
	// Export of a program with no aggregate.
	resp, err := ts.Client().Get(ts.URL + "/profiles/Richards")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty export = %d", resp.StatusCode)
	}
}

// During WAL replay the worker answers /run and health traffic but
// holds profile traffic at the door with 503 + Retry-After; /readyz
// stays 200 (body-only reflection) so the fleet does not eject a
// worker that is merely replaying its log.
func TestProfileEndpointsDuringRecovery(t *testing.T) {
	dir := t.TempDir()
	seed, err := profdb.Open(dir, profdb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seed.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	db, err := profdb.OpenAsync(dir, profdb.Config{RecoveryHook: func() {
		close(entered)
		<-gate
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ts, _ := profServer(t, Config{ProfileDB: db})
	<-entered

	code, body := postProfile(t, ts, "Richards", benchProfileJSON(t, "Richards", 1))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("ingest during recovery = %d: %s", code, body)
	}
	var eb ErrorBody
	json.Unmarshal(body, &eb)
	if eb.Kind != KindRecovering || eb.RetryAfterMS <= 0 {
		t.Fatalf("recovering body = %+v", eb)
	}

	// /readyz still 200, with the profdb state visible in the body.
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz during profdb recovery = %d", resp.StatusCode)
	}
	var h Health
	json.Unmarshal(rb, &h)
	if h.ProfDB != profdb.StateRecovering {
		t.Fatalf("health profdb = %q, want recovering", h.ProfDB)
	}
	// /run is unaffected by profdb recovery.
	if code, _, _ := post(t, ts, RunRequest{Source: testProg}); code != http.StatusOK {
		t.Fatalf("/run during profdb recovery = %d", code)
	}

	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for db.State() != profdb.StateReady {
		if time.Now().After(deadline) {
			t.Fatal("recovery did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := postProfile(t, ts, "Richards", benchProfileJSON(t, "Richards", 1)); code != http.StatusOK {
		t.Fatalf("ingest after recovery = %d", code)
	}
	resp2, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rb2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	json.Unmarshal(rb2, &h)
	if h.ProfDB != profdb.StateReady {
		t.Fatalf("health profdb after recovery = %q", h.ProfDB)
	}
}

func TestProfileIngestRejectedWhileDraining(t *testing.T) {
	db, err := profdb.Open(t.TempDir(), profdb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(Config{ProfileDB: db})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.BeginDrain()
	code, body := postProfile(t, ts, "Richards", benchProfileJSON(t, "Richards", 1))
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), KindDraining) {
		t.Fatalf("draining ingest = %d: %s", code, body)
	}
}

func TestProfileEndpointsAbsentWithoutDB(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/profiles/Richards")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("profiles without db = %d, want 404", resp.StatusCode)
	}
	// And health carries no profdb field.
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if bytes.Contains(hb, []byte("profdb")) {
		t.Fatalf("health leaks profdb field: %s", hb)
	}
}
