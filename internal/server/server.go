// Package server is the long-running face of the reproduction: a
// fault-isolated HTTP service that accepts Mini-Cecil programs and runs
// the full parse → build → specialize → compile → interpret pipeline
// per request. The pipeline itself (PR 3) already contains faults —
// this package adds the production harness around it:
//
//   - per-request isolation: every request executes inside its own
//     pipeline.Guard boundary with the interpreter resource guards
//     (step / call-depth / wall-clock) applied, so a panicking or
//     runaway request yields a structured error for that request only;
//   - admission control: a concurrency semaphore plus a bounded wait
//     queue; when the queue is full requests are shed with 429 and a
//     Retry-After hint instead of piling onto the event loop;
//   - deadlines: a per-request context deadline (client-lowerable,
//     server-capped) propagated through driver.RunOptions into the
//     interpreter's cancellation polling;
//   - a per-program circuit breaker: source that repeatedly crashes
//     the pipeline is rejected for a cooldown instead of re-crashing a
//     worker on every retry;
//   - health: /healthz (liveness + counters) and /readyz (admission);
//   - graceful drain: BeginDrain stops admission, /readyz flips to
//     503, in-flight requests finish under a drain deadline.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/obs"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
	"selspec/internal/profdb"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

// Config tunes the service. The zero value is usable: every field has
// a production default filled in by New.
type Config struct {
	// MaxConcurrent is the number of requests allowed to execute the
	// pipeline at once (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth is how many admitted requests may wait for a worker
	// slot beyond MaxConcurrent before the server sheds load with 429
	// (default 2×MaxConcurrent).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request does
	// not set one (default 30s). MaxTimeout caps client-requested
	// deadlines (default DefaultTimeout).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// StepLimit / DepthLimit are the interpreter resource guards
	// applied to every request (defaults: 2e9 steps, interpreter
	// default depth).
	StepLimit  uint64
	DepthLimit int
	// MaxSourceBytes bounds the request body (default 1 MiB).
	MaxSourceBytes int64
	// BreakerThreshold consecutive contained panics open a program's
	// circuit for BreakerCooldown (defaults 3, 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DrainTimeout bounds how long ListenAndServe waits for in-flight
	// requests after BeginDrain (default 30s).
	DrainTimeout time.Duration
	// Metrics, when non-nil, enables observability: the server
	// registers its admission/fault counters there, every request's
	// dispatch and interpreter counters flow into it, and GET /metrics
	// serves it in Prometheus text format. /metrics bypasses admission
	// control and keeps answering during a drain, so operators can
	// watch a wind-down. Nil (the default) disables the endpoint.
	Metrics *obs.Registry
	// Verify runs the bytecode verifier over every request's compiled
	// module before execution (and again after lazy runs): a defense
	// layer for a service executing untrusted source through the
	// bytecode tier. A verifier finding fails the request like any
	// other contained pipeline fault.
	Verify bool
	// ProfileDB, when non-nil, enables the durable profile endpoints
	// (POST/GET /profiles/{program}). The server serves /run traffic
	// regardless of the database's recovery state; /profiles answers
	// 503 + Retry-After until the WAL replay finishes.
	ProfileDB *profdb.DB
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = c.DefaultTimeout
	}
	if c.StepLimit == 0 {
		c.StepLimit = 2_000_000_000
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	return c
}

// Server is the specialization service. Create with New; serve either
// through Handler (httptest, embedding) or ListenAndServe (the CLI).
type Server struct {
	cfg     Config
	sem     chan struct{} // worker slots
	waiting atomic.Int64  // admitted requests waiting for a slot

	inflight atomic.Int64
	served   atomic.Uint64 // completed requests, any outcome
	shed     atomic.Uint64 // rejected for a full queue
	faulted  atomic.Uint64 // contained pipeline panics

	draining  chan struct{}
	drainOnce sync.Once

	// Registry-backed mirrors of the atomic counters above, for
	// /metrics scrapers; nil (and free) when Config.Metrics is unset.
	mServed, mShed, mFaulted *obs.Counter
	// instruments is the interpreter/dispatch instrument bundle,
	// registered once here so per-request Executes never take the
	// registry lock; nil when Config.Metrics is unset.
	instruments *driver.Instruments

	breaker *breaker
	mux     *http.ServeMux
	// benchCache caches parsed+lowered benchmark programs for profile
	// upload validation (name → *driver.Pipeline).
	benchCache sync.Map

	// OnListen, when set before ListenAndServe, receives the bound
	// address (tests listen on :0 and need the real port).
	OnListen func(net.Addr)
}

// New builds a Server with cfg's gaps filled by production defaults.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		draining: make(chan struct{}),
		breaker:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, 1024),
	}
	if cfg.Metrics != nil {
		s.mServed = cfg.Metrics.Counter("selspec_server_served_total")
		s.mShed = cfg.Metrics.Counter("selspec_server_shed_total")
		s.mFaulted = cfg.Metrics.Counter("selspec_server_contained_panics_total")
		s.instruments = driver.NewInstruments(cfg.Metrics)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.ProfileDB != nil {
		s.mux.HandleFunc("POST /profiles/{program}", s.handleProfileIngest)
		s.mux.HandleFunc("GET /profiles/{program}", s.handleProfileExport)
	}
	return s
}

// handleMetrics serves the registry in Prometheus text format. It does
// not consult admission control or the drain gate: scraping must keep
// working while the server sheds, breaks circuits, or drains.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Metrics == nil {
		http.Error(w, "metrics not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Metrics.WritePrometheus(w)
}

// Handler exposes the service's routes (POST /run, GET /healthz,
// GET /readyz).
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain moves the server into draining: /readyz flips to 503 and
// new /run requests are rejected, while in-flight requests keep their
// worker slots and finish normally. Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// InFlight reports the number of requests currently executing the
// pipeline (drain tests watch it reach zero).
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Served reports the number of completed /run requests (any outcome).
func (s *Server) Served() uint64 { return s.served.Load() }

// health snapshots the counters.
func (s *Server) health() Health {
	st := "ok"
	if s.Draining() {
		st = "draining"
	}
	h := Health{
		Status:       st,
		PID:          os.Getpid(),
		InFlight:     s.inflight.Load(),
		Queued:       s.waiting.Load(),
		Served:       s.served.Load(),
		Shed:         s.shed.Load(),
		Faulted:      s.faulted.Load(),
		CircuitsOpen: s.breaker.openCount(),
	}
	if s.cfg.ProfileDB != nil {
		h.ProfDB = s.cfg.ProfileDB.State()
	}
	return h
}

// handleHealthz is liveness: 200 as long as the process can serve
// HTTP at all, draining or not, with the counters as the body.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleReadyz is admission readiness: 503 once draining so load
// balancers stop routing here while in-flight work finishes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	if s.Draining() {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, s.health())
}

// errShed classifies a full-queue admission failure internally.
var errShed = errors.New("admission queue full")

// admit acquires a worker slot, waiting in the bounded queue when all
// slots are busy. It fails fast with errShed when the queue is full,
// or with the context error when the client gives up while queued.
// A drain that begins while a request is queued does NOT evict it:
// admission control rejects new arrivals at the front door, but every
// request already past it completes (the "zero dropped in-flight"
// drain guarantee, bounded overall by DrainTimeout).
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, nil
	default:
	}
	if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		return nil, errShed
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// handleRun runs one program through the pipeline with full isolation.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, ErrorBody{Kind: KindDraining, Error: "server is draining"})
		return
	}

	var req RunRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, ErrorBody{Kind: KindBadRequest, Error: "invalid request body: " + err.Error()})
		return
	}
	rr, err := s.resolve(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrorBody{Kind: KindBadRequest, Error: err.Error()})
		return
	}
	// A routing layer (the fleet router) that has already started the
	// clock on this request passes the remaining budget along; it can
	// only lower the deadline resolve picked, so a retried request
	// never runs past what the original client was promised.
	if h := r.Header.Get(DeadlineHeader); h != "" {
		if ms, perr := strconv.ParseInt(h, 10, 64); perr == nil && ms > 0 {
			if d := time.Duration(ms) * time.Millisecond; d < rr.timeout {
				rr.timeout = d
			}
		}
	}

	// Circuit breaker: a program that keeps crashing the pipeline is
	// rejected before it costs a worker slot.
	if ok, retry := s.breaker.allow(rr.key); !ok {
		writeErr(w, http.StatusServiceUnavailable, ErrorBody{
			Kind:         KindCircuitOpen,
			Error:        "program repeatedly crashed the pipeline; circuit open",
			RetryAfterMS: retry.Milliseconds(),
		})
		return
	}

	release, err := s.admit(r.Context())
	switch {
	case errors.Is(err, errShed):
		s.shed.Add(1)
		s.mShed.Inc()
		writeErr(w, http.StatusTooManyRequests, ErrorBody{
			Kind:         KindOverloaded,
			Error:        "admission queue full",
			RetryAfterMS: time.Second.Milliseconds(),
		})
		return
	case err != nil: // client disconnected while queued
		writeErr(w, statusClientClosedRequest, ErrorBody{Kind: KindCanceled, Error: err.Error()})
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), rr.timeout)
	defer cancel()

	s.inflight.Add(1)
	res, err := s.execute(ctx, rr)
	s.inflight.Add(-1)
	s.served.Add(1)
	s.mServed.Inc()

	if err != nil {
		status, body := s.classify(ctx, err)
		s.breaker.record(rr.key, body.Kind == KindPanic)
		writeErr(w, status, body)
		return
	}
	s.breaker.record(rr.key, false)

	resp := RunResponse{Value: res.Value, Output: res.Output, Config: rr.cfg.String(), Engine: res.Engine.String()}
	if req.Stats {
		resp.Stats = &RunStats{
			Dispatches:      res.Counters.Dispatches,
			VersionSelects:  res.Counters.VersionSelects,
			Cycles:          res.Counters.Cycles,
			StaticVersions:  res.Stats.Versions,
			InvokedVersions: res.Invoked,
			IRNodes:         res.Stats.IRNodes,
			WallNS:          res.Wall.Nanoseconds(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolved is a validated RunRequest ready to execute.
type resolved struct {
	label       string
	src         string
	key         string // breaker key: hash of the program identity
	cfg         opt.Config
	mech        interp.Mechanism
	engine      driver.Engine
	threshold   int64
	train, test map[string]int64
	timeout     time.Duration
}

// resolve validates the request against the single sources of truth
// the CLI uses (opt.ParseConfig, interp.ParseMechanism, programs
// registry) and fills defaults.
func (s *Server) resolve(req *RunRequest) (*resolved, error) {
	rr := &resolved{threshold: specialize.DefaultThreshold}
	switch {
	case req.Source != "" && req.Bench != "":
		return nil, fmt.Errorf("source and bench are mutually exclusive")
	case req.Bench != "":
		b, ok := programs.ByName(req.Bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", req.Bench)
		}
		rr.src, rr.train, rr.test, rr.label = b.Source, b.Train, b.Test, b.Name
		rr.key = ProgramKey("", b.Name)
	case req.Source != "":
		rr.src, rr.label = req.Source, "request"
		rr.key = ProgramKey(req.Source, "")
	default:
		return nil, fmt.Errorf("one of source or bench is required")
	}
	if req.Label != "" {
		rr.label = req.Label
	}

	cfgName := req.Config
	if cfgName == "" {
		cfgName = "Base"
	}
	cfg, err := opt.ParseConfig(cfgName)
	if err != nil {
		return nil, err
	}
	rr.cfg = cfg

	mechName := req.Dispatch
	if mechName == "" {
		mechName = "PIC"
	}
	mech, err := interp.ParseMechanism(mechName)
	if err != nil {
		return nil, err
	}
	rr.mech = mech

	engine, err := driver.ParseEngine(req.Engine)
	if err != nil {
		return nil, err
	}
	rr.engine = engine

	if req.Threshold > 0 {
		rr.threshold = req.Threshold
	}
	rr.timeout = s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		rr.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if rr.timeout > s.cfg.MaxTimeout {
			rr.timeout = s.cfg.MaxTimeout
		}
	}
	return rr, nil
}

// The breaker keys on a content hash, so the same crashing program is
// recognized no matter which connection or label resubmits it.
func hashKey(sum string) string {
	h := sha256.Sum256([]byte(sum))
	return hex.EncodeToString(h[:8])
}

// ProgramKey is the canonical identity of a run request: the truncated
// sha256 of its source (or of the canonical benchmark name). It is the
// key the circuit breaker counts crashes under, and the key the fleet
// router consistent-hashes by — same bytes, same worker, warm caches.
// Exactly one of source/bench should be non-empty; bench wins when
// both are set, matching resolve's validation order.
func ProgramKey(source, bench string) string {
	if bench != "" {
		return hashKey("bench:" + bench)
	}
	return hashKey(source)
}

// execute runs the full pipeline for one request inside its own
// harness-level Guard: even a fault in server-side glue that no inner
// stage boundary saw becomes a structured error for this request,
// never a crashed worker or a torn-down process.
func (s *Server) execute(ctx context.Context, rr *resolved) (*driver.Result, error) {
	return pipeline.Guard(pipeline.StageHarness, rr.label, rr.cfg.String(), func() (*driver.Result, error) {
		p, err := driver.LoadNamed(rr.label, rr.src)
		if err != nil {
			return nil, err
		}
		ro := driver.RunOptions{
			Context:       ctx,
			StepLimit:     s.cfg.StepLimit,
			DepthLimit:    s.cfg.DepthLimit,
			Mechanism:     rr.mech,
			Engine:        rr.engine,
			CaptureOutput: true,
			Instruments:   s.instruments,
			Verify:        s.cfg.Verify,
		}

		oo := opt.Options{Config: rr.cfg}
		if rr.cfg == opt.CustMM {
			oo.Lazy = true
		}
		if rr.cfg == opt.Selective {
			pro := ro
			pro.Overrides = rr.train
			cg, err := p.CollectProfile(pro)
			if err != nil {
				return nil, fmt.Errorf("training run: %w", err)
			}
			res, err := pipeline.Specialize(rr.label, p.Prog, cg, specialize.Params{Threshold: rr.threshold})
			if err != nil {
				return nil, err
			}
			oo.Specializations = res.Specializations
		}

		c, err := pipeline.Compile(rr.label, p.Prog, oo)
		if err != nil {
			return nil, err
		}
		ro.Overrides = rr.test
		return driver.Execute(c, ro)
	})
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the response was ready.
const statusClientClosedRequest = 499

// classify maps an execution error to (HTTP status, error body). The
// context is consulted first so a run killed by its deadline reports
// KindDeadline even though the proximate error is an interpreter
// cancellation.
func (s *Server) classify(ctx context.Context, err error) (int, ErrorBody) {
	body := ErrorBody{Error: err.Error()}
	var se *pipeline.StageError
	if errors.As(err, &se) {
		body.Stage = string(se.Stage)
	}
	switch {
	case ctx.Err() == context.DeadlineExceeded:
		body.Kind = KindDeadline
		return http.StatusGatewayTimeout, body
	case ctx.Err() == context.Canceled:
		body.Kind = KindCanceled
		return statusClientClosedRequest, body
	case se != nil && se.Stack != nil:
		s.faulted.Add(1)
		s.mFaulted.Inc()
		body.Kind = KindPanic
		return http.StatusInternalServerError, body
	default:
		body.Kind = KindProgram
		return http.StatusUnprocessableEntity, body
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, body ErrorBody) {
	if body.RetryAfterMS > 0 {
		secs := (body.RetryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, code, body)
}

// ListenAndServe binds addr and serves until ctx is cancelled (the CLI
// wires SIGTERM/SIGINT here), then drains gracefully: admission stops,
// /readyz flips to 503, and in-flight requests get up to DrainTimeout
// to finish before connections are torn down. Returns nil after a
// clean drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if s.OnListen != nil {
		s.OnListen(ln.Addr())
	}
	hs := &http.Server{Handler: s.mux}

	shutdownDone := make(chan error, 1)
	go func() {
		<-ctx.Done()
		s.BeginDrain()
		dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		shutdownDone <- hs.Shutdown(dctx)
	}()

	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	// Serve returns as soon as Shutdown begins; wait for the drain
	// itself (in-flight requests) to complete.
	if err := <-shutdownDone; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
