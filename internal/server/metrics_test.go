package server

// The /metrics suite is the acceptance test for the observability
// layer's service surface: after a chaos storm the scraped counters
// must match the fault plan exactly (contained panics, shed requests),
// the scrape must cover every instrumented layer — dispatch caches,
// interpreter, specializer, pipeline stages — and the endpoint must
// keep answering while the server drains.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"selspec/internal/obs"
	"selspec/internal/pipeline"
)

// scrape GETs /metrics and parses the Prometheus text into a
// series → value map (series names keep their label sets verbatim).
func scrape(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("scrape: content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("scrape: unparseable line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("scrape: bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestMetricsChaosStormScrape arms the full observability stack —
// registry on the server, pipeline observer at the Guard boundaries —
// then runs a storm with a precise fault plan and checks the scraped
// counters against it: exactly the injected compile panics appear in
// both the server's contained-panic counter and the pipeline's
// per-stage one, and every instrumented layer shows up in the scrape.
func TestMetricsChaosStormScrape(t *testing.T) {
	const N = 24
	const wantPanics = 6 // every i%4==1 request below

	reg := obs.NewRegistry()
	defer pipeline.SetObserver(pipeline.NewObserver(reg, nil))()

	label := func(i int) string { return fmt.Sprintf("mreq-%d", i) }
	var rules []pipeline.FaultRule
	for i := 0; i < N; i++ {
		if i%4 == 1 {
			rules = append(rules, pipeline.FaultRule{
				Stage: pipeline.StageCompile, Program: label(i),
				Action: pipeline.FaultPanic, Message: "metrics chaos panic",
			})
		}
	}
	defer pipeline.ArmFaults(pipeline.NewInjector(1, rules...))()

	srv := New(Config{
		MaxConcurrent:    4,
		QueueDepth:       N, // no shedding in this phase: the plan is panics only
		BreakerThreshold: N,
		DefaultTimeout:   time.Minute,
		Metrics:          reg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make([]int, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := RunRequest{Label: label(i)}
			if i%4 == 1 {
				req.Source = fmt.Sprintf("-- metrics chaos %d\n%s", i, testProg)
			} else {
				req.Source = testProg
				if i%4 == 3 {
					req.Config = "Selective" // exercises profile + specialize + compile
				}
			}
			codes[i], _, _ = post(t, ts, req)
		}(i)
	}
	wg.Wait()

	gotPanics := 0
	for i, code := range codes {
		if i%4 == 1 {
			if code != http.StatusInternalServerError {
				t.Errorf("req %d: status %d, want 500", i, code)
			}
			gotPanics++
		} else if code != http.StatusOK {
			t.Errorf("req %d: status %d, want 200", i, code)
		}
	}
	if gotPanics != wantPanics {
		t.Fatalf("fault plan drifted: %d panic requests, want %d", gotPanics, wantPanics)
	}

	m := scrape(t, ts)

	// Server-level counters match the fault plan and the health snapshot.
	if got := m["selspec_server_contained_panics_total"]; got != wantPanics {
		t.Errorf("contained_panics_total = %v, want %d", got, wantPanics)
	}
	if got := m["selspec_server_shed_total"]; got != 0 {
		t.Errorf("shed_total = %v, want 0 (queue was storm-sized)", got)
	}
	if got := m["selspec_server_served_total"]; got != N {
		t.Errorf("served_total = %v, want %d", got, N)
	}
	h := srv.health()
	if uint64(m["selspec_server_contained_panics_total"]) != h.Faulted {
		t.Errorf("scrape faulted %v != health faulted %d", m["selspec_server_contained_panics_total"], h.Faulted)
	}

	// Pipeline layer: the per-stage panic counter pins the faults to the
	// compile stage, and the stage histograms saw the traffic.
	if got := m[`selspec_pipeline_contained_panics_total{stage="compile"}`]; got != wantPanics {
		t.Errorf(`contained_panics{stage="compile"} = %v, want %d`, got, wantPanics)
	}
	if got := m[`selspec_pipeline_stage_seconds_count{stage="interp"}`]; got == 0 {
		t.Error("no interp stage timings recorded")
	}

	// Every instrumented layer reports: dispatch caches, interpreter,
	// specializer (the Selective requests ran it).
	for _, series := range []string{
		"selspec_dispatch_pic_hits_total",
		"selspec_dispatch_gf_cache_hits_total",
		"selspec_interp_sends_total",
		"selspec_interp_steps_total",
		"selspec_specialize_arcs_examined_total",
		"selspec_opt_static_bound_sends_total",
	} {
		if _, ok := m[series]; !ok {
			t.Errorf("scrape missing series %s", series)
		} else if m[series] == 0 && !strings.Contains(series, "static_bound") {
			t.Errorf("series %s is zero after the storm", series)
		}
	}
}

// TestMetricsShedCounterMatchesObservedSheds overloads a tiny admission
// window with slow requests and checks the scraped shed counter equals
// exactly the number of 429s clients saw.
func TestMetricsShedCounterMatchesObservedSheds(t *testing.T) {
	reg := obs.NewRegistry()

	defer pipeline.ArmFaults(pipeline.NewInjector(1, pipeline.FaultRule{
		Stage: pipeline.StageHarness, Program: "shed-storm",
		Action: pipeline.FaultSleep, Delay: 150 * time.Millisecond,
	}))()

	srv := New(Config{
		MaxConcurrent:  1,
		QueueDepth:     1,
		DefaultTimeout: time.Minute,
		Metrics:        reg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const N = 8
	var wg sync.WaitGroup
	codes := make([]int, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, _ = post(t, ts, RunRequest{Source: testProg, Label: "shed-storm"})
		}(i)
	}
	wg.Wait()

	shed := 0
	for _, code := range codes {
		if code == http.StatusTooManyRequests {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("storm never shed: test lost its overload")
	}
	m := scrape(t, ts)
	if got := m["selspec_server_shed_total"]; got != float64(shed) {
		t.Errorf("shed_total = %v, clients observed %d sheds", got, shed)
	}
	if got := srv.health().Shed; got != uint64(shed) {
		t.Errorf("health shed = %d, clients observed %d", got, shed)
	}
}

// TestMetricsLiveDuringDrain pins the operational contract: once
// BeginDrain fires, /run refuses new work but /metrics keeps serving —
// both mid-drain (in-flight requests still running) and after the
// drain completes.
func TestMetricsLiveDuringDrain(t *testing.T) {
	reg := obs.NewRegistry()

	defer pipeline.ArmFaults(pipeline.NewInjector(1, pipeline.FaultRule{
		Stage: pipeline.StageHarness, Program: "drain-scrape",
		Action: pipeline.FaultSleep, Delay: 200 * time.Millisecond,
	}))()

	srv := New(Config{MaxConcurrent: 2, QueueDepth: 2, Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts, RunRequest{Source: testProg, Label: "drain-scrape"})
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.InFlight() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("server never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	srv.BeginDrain()

	// Mid-drain: /run is refused, /metrics answers.
	code, _, _ := post(t, ts, RunRequest{Source: testProg})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain /run: status %d, want 503", code)
	}
	if m := scrape(t, ts); len(m) == 0 {
		t.Error("mid-drain scrape returned no series")
	}

	wg.Wait()

	// Post-drain: still scraping, and the counters reflect the drained
	// requests.
	m := scrape(t, ts)
	if got := m["selspec_server_served_total"]; got != 2 {
		t.Errorf("served_total after drain = %v, want 2", got)
	}
}

// TestMetricsDisabledReturns404: without a registry the endpoint is
// absent-by-contract, not an empty page.
func TestMetricsDisabledReturns404(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled /metrics: status %d, want 404", resp.StatusCode)
	}
}
