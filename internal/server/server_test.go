package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
	"selspec/internal/specialize"
)

// testProg is a small deterministic program exercising dispatch,
// printing, and a non-trivial result.
const testProg = `
class A
class B isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method main() {
  var total := 0;
  var objs := newarray(2);
  aput(objs, 0, new A());
  aput(objs, 1, new B());
  var i := 0;
  while i < 10 { total := total + m(aget(objs, i % 2)); i := i + 1; }
  println("total " + str(total));
  total;
}
`

// loopProg runs long enough that the wall-clock guard always fires
// before it completes (it is only ever run under a deadline).
const loopProg = `
method main() {
  var i := 0;
  while i < 2000000000 { i := i + 1; }
  i;
}
`

func post(t *testing.T, ts *httptest.Server, req RunRequest) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func decodeRun(t *testing.T, data []byte) RunResponse {
	t.Helper()
	var rr RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatalf("bad RunResponse %q: %v", data, err)
	}
	return rr
}

func decodeErr(t *testing.T, data []byte) ErrorBody {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatalf("bad ErrorBody %q: %v", data, err)
	}
	return eb
}

// oneShot runs the same program through the programmatic one-shot API
// the CLIs use, for byte-identical comparison with service responses.
func oneShot(t *testing.T, src string, cfg opt.Config) *driver.Result {
	t.Helper()
	p, err := driver.LoadNamed("request", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunConfig(driver.ConfigOptions{
		Config:     cfg,
		SpecParams: specialize.Params{Threshold: specialize.DefaultThreshold},
		RunExtra: func(ro *driver.RunOptions) {
			ro.CaptureOutput = true
			ro.Mechanism = interp.MechPIC
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunAllConfigsMatchesOneShot(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	for _, cfg := range opt.Configs() {
		code, _, data := post(t, ts, RunRequest{Source: testProg, Config: cfg.String(), Stats: true})
		if code != http.StatusOK {
			t.Fatalf("%v: status %d: %s", cfg, code, data)
		}
		got := decodeRun(t, data)
		want := oneShot(t, testProg, cfg)
		if got.Value != want.Value || got.Output != want.Output {
			t.Errorf("%v: served (%q, %q), one-shot (%q, %q)", cfg, got.Value, got.Output, want.Value, want.Output)
		}
		if got.Stats == nil || got.Stats.Cycles != want.Counters.Cycles {
			t.Errorf("%v: stats = %+v, want cycles %d", cfg, got.Stats, want.Counters.Cycles)
		}
	}
}

// TestRunWithVerify: a server configured with Verify runs the bytecode
// verifier on every request's compiled module and still serves the same
// answers under every configuration.
func TestRunWithVerify(t *testing.T) {
	ts := httptest.NewServer(New(Config{Verify: true}).Handler())
	defer ts.Close()

	for _, cfg := range opt.Configs() {
		code, _, data := post(t, ts, RunRequest{Source: testProg, Config: cfg.String()})
		if code != http.StatusOK {
			t.Fatalf("%v: status %d: %s", cfg, code, data)
		}
		got := decodeRun(t, data)
		want := oneShot(t, testProg, cfg)
		if got.Value != want.Value || got.Output != want.Output {
			t.Errorf("%v: verified run (%q, %q), one-shot (%q, %q)", cfg, got.Value, got.Output, want.Value, want.Output)
		}
	}
}

func TestRunBenchmark(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	code, _, data := post(t, ts, RunRequest{Bench: "Sets", Config: "CHA"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	if got := decodeRun(t, data); !strings.Contains(got.Output, "overlapping pairs counted") {
		t.Errorf("output = %q", got.Output)
	}
}

func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	cases := []RunRequest{
		{},                                    // neither source nor bench
		{Source: testProg, Bench: "Richards"}, // both
		{Bench: "Nope"},                       // unknown benchmark
		{Source: testProg, Config: "Bogus"},   // unknown config
		{Source: testProg, Dispatch: "Bogus"}, // unknown mechanism
	}
	for i, req := range cases {
		code, _, data := post(t, ts, req)
		if code != http.StatusBadRequest {
			t.Errorf("case %d: status %d: %s", i, code, data)
			continue
		}
		if eb := decodeErr(t, data); eb.Kind != KindBadRequest {
			t.Errorf("case %d: kind %q", i, eb.Kind)
		}
	}

	// Non-JSON body.
	resp, err := ts.Client().Post(ts.URL+"/run", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-JSON body: status %d", resp.StatusCode)
	}
}

func TestProgramErrorIsStructured(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	code, _, data := post(t, ts, RunRequest{Source: "method main() { undefined_thing; }"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", code, data)
	}
	eb := decodeErr(t, data)
	if eb.Kind != KindProgram || !strings.Contains(eb.Error, "undefined variable") {
		t.Errorf("body = %+v", eb)
	}
}

func TestDeadlineProducesStructuredTimeout(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	code, _, data := post(t, ts, RunRequest{Source: loopProg, TimeoutMS: 50})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", code, data)
	}
	if eb := decodeErr(t, data); eb.Kind != KindDeadline {
		t.Errorf("kind = %q (%+v)", eb.Kind, eb)
	}
}

func TestInjectedPanicIsIsolatedPerRequest(t *testing.T) {
	inj := pipeline.NewInjector(1, pipeline.FaultRule{
		Stage: pipeline.StageCompile, Program: "victim", Action: pipeline.FaultPanic, Message: "chaos",
	})
	defer pipeline.ArmFaults(inj)()

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, data := post(t, ts, RunRequest{Source: testProg, Label: "victim"})
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", code, data)
	}
	eb := decodeErr(t, data)
	if eb.Kind != KindPanic || eb.Stage != "compile" {
		t.Errorf("body = %+v, want contained compile panic", eb)
	}

	// The very next request on the same server is untouched.
	code, _, data = post(t, ts, RunRequest{Source: testProg, Label: "healthy"})
	if code != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", code, data)
	}
	if got, want := decodeRun(t, data).Value, oneShot(t, testProg, opt.Base).Value; got != want {
		t.Errorf("follow-up value = %q, want %q", got, want)
	}
	if f := srv.health().Faulted; f != 1 {
		t.Errorf("faulted counter = %d", f)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	// One worker slot, one queue slot; a harness-stage sleep keeps the
	// worker busy deterministically.
	inj := pipeline.NewInjector(1, pipeline.FaultRule{
		Stage: pipeline.StageHarness, Program: "slow",
		Action: pipeline.FaultSleep, Delay: 300 * time.Millisecond,
	})
	defer pipeline.ArmFaults(inj)()

	srv := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const slow = 2 // fills the worker slot + the queue slot
	var wg sync.WaitGroup
	codes := make([]int, slow)
	for i := 0; i < slow; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, _ = post(t, ts, RunRequest{Source: testProg, Label: "slow"})
		}(i)
	}
	// Wait until both requests occupy the slot and the queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight()+srv.waiting.Load() < slow {
		if time.Now().After(deadline) {
			t.Fatalf("slow requests never occupied the server (inflight=%d queued=%d)",
				srv.InFlight(), srv.waiting.Load())
		}
		time.Sleep(time.Millisecond)
	}

	code, hdr, data := post(t, ts, RunRequest{Source: testProg, Label: "shedme"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", code, data)
	}
	if eb := decodeErr(t, data); eb.Kind != KindOverloaded || eb.RetryAfterMS <= 0 {
		t.Errorf("body = %+v", eb)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}

	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("slow request %d: status %d", i, c)
		}
	}
	if shed := srv.health().Shed; shed != 1 {
		t.Errorf("shed counter = %d", shed)
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	// The program crashes the pipeline exactly 3 times (the breaker
	// threshold), then recovers — modeling a transient compiler bug.
	inj := pipeline.NewInjector(1, pipeline.FaultRule{
		Stage: pipeline.StageCompile, Program: "flaky",
		Action: pipeline.FaultPanic, Message: "crash", Limit: 3,
	})
	defer pipeline.ArmFaults(inj)()

	srv := New(Config{BreakerThreshold: 3, BreakerCooldown: 80 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := RunRequest{Source: testProg, Label: "flaky"}
	for i := 0; i < 3; i++ {
		code, _, data := post(t, ts, req)
		if code != http.StatusInternalServerError {
			t.Fatalf("crash %d: status %d: %s", i, code, data)
		}
	}

	// Circuit is open: rejected without running the pipeline.
	fired := inj.TotalFired()
	code, hdr, data := post(t, ts, req)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("open circuit: status %d: %s", code, data)
	}
	if eb := decodeErr(t, data); eb.Kind != KindCircuitOpen || eb.RetryAfterMS <= 0 {
		t.Errorf("body = %+v", eb)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("missing Retry-After header")
	}
	if inj.TotalFired() != fired {
		t.Error("rejected request still reached the pipeline")
	}
	if srv.health().CircuitsOpen != 1 {
		t.Errorf("circuits open = %d", srv.health().CircuitsOpen)
	}

	// After the cooldown the half-open trial runs; the fault rule is
	// exhausted (Limit 3), so it succeeds and closes the circuit.
	time.Sleep(100 * time.Millisecond)
	code, _, data = post(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("half-open trial: status %d: %s", code, data)
	}
	code, _, _ = post(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("closed circuit: status %d", code)
	}
	if n := srv.health().CircuitsOpen; n != 0 {
		t.Errorf("circuits open after recovery = %d", n)
	}
}

func TestBreakerIgnoresOrdinaryProgramErrors(t *testing.T) {
	srv := New(Config{BreakerThreshold: 2, BreakerCooldown: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bad := RunRequest{Source: "method main() { undefined_thing; }"}
	for i := 0; i < 5; i++ {
		code, _, data := post(t, ts, bad)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("attempt %d: status %d: %s (parse errors must never open the circuit)", i, code, data)
		}
	}
}

func TestHealthzReadyzAndDrain(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, Health) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	if code, h := get("/healthz"); code != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz = %d %+v", code, h)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz = %d", code)
	}

	srv.BeginDrain()
	srv.BeginDrain() // idempotent

	// Liveness stays up through a drain; readiness flips to 503.
	if code, h := get("/healthz"); code != http.StatusOK || h.Status != "draining" {
		t.Errorf("draining healthz = %d %+v", code, h)
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d", code)
	}

	code, _, data := post(t, ts, RunRequest{Source: testProg})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining run: status %d: %s", code, data)
	}
	if eb := decodeErr(t, data); eb.Kind != KindDraining {
		t.Errorf("kind = %q", eb.Kind)
	}
}

func TestTimeoutCappedByServerMax(t *testing.T) {
	srv := New(Config{DefaultTimeout: time.Hour, MaxTimeout: 60 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The client asks for an hour; the cap turns the loop program into
	// a deadline error within the server max.
	start := time.Now()
	code, _, data := post(t, ts, RunRequest{Source: loopProg, TimeoutMS: 3_600_000})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", code, data)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Errorf("request took %v despite the 60ms cap", wall)
	}
}

func TestChaosModeRules(t *testing.T) {
	// ChaosRules is what `selspec serve -chaos` arms: probabilistic
	// panics and delays drawn from a seeded PRNG.
	a := pipeline.NewInjector(42, ChaosRules(0.5, 0)...)
	b := pipeline.NewInjector(42, ChaosRules(0.5, 0)...)
	da := pipeline.ArmFaults(a)
	outcomesA := make([]bool, 32)
	for i := range outcomesA {
		_, err := pipeline.Guard(pipeline.StageHarness, fmt.Sprint(i), "Base",
			func() (int, error) { return 0, nil })
		outcomesA[i] = err != nil
	}
	da()
	db := pipeline.ArmFaults(b)
	for i := range outcomesA {
		_, err := pipeline.Guard(pipeline.StageHarness, fmt.Sprint(i), "Base",
			func() (int, error) { return 0, nil })
		if (err != nil) != outcomesA[i] {
			t.Fatalf("chaos rules not reproducible at %d", i)
		}
	}
	db()
}
