package server

// The chaos suite is the acceptance test for the service's fault
// isolation (run under -race in CI): a storm of concurrent requests
// with injected stage panics, injected errors, deadline blowups and
// slow stages must produce structured errors on exactly the faulted
// requests, byte-identical results to one-shot CLI runs on every
// healthy request, and a drain that completes every request already
// past admission.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"selspec/internal/opt"
	"selspec/internal/pipeline"
)

// engineNamesForChaos alternates healthy storm requests between the
// bytecode VM (the default) and the tree interpreter; results must be
// byte-identical either way.
var engineNamesForChaos = [2]string{"vm", "tree"}

// chaosKind labels what a chaos request expects.
type chaosKind int

const (
	chaosHealthy   chaosKind = iota
	chaosPanic               // injected compile-stage panic → 500 KindPanic
	chaosError               // injected stage error → 422 KindProgram
	chaosDeadline            // runaway program under a short deadline → 504
	chaosSlowStage           // injected slow stage blowing the deadline → 504
)

func TestChaosStorm(t *testing.T) {
	const N = 48 // well above the ≥32 acceptance floor

	cfgs := opt.Configs()

	// Expected results for healthy requests, one per configuration,
	// computed through the one-shot driver API BEFORE arming faults.
	expect := make(map[opt.Config]struct{ value, output string })
	for _, cfg := range cfgs {
		res := oneShot(t, testProg, cfg)
		expect[cfg] = struct{ value, output string }{res.Value, res.Output}
	}

	// Assign scenarios and build one precise fault rule per faulted
	// request, matched by its unique label so nothing else can trip it.
	kinds := make([]chaosKind, N)
	var rules []pipeline.FaultRule
	label := func(i int) string { return fmt.Sprintf("req-%d", i) }
	for i := 0; i < N; i++ {
		switch i % 8 {
		case 1:
			kinds[i] = chaosPanic
			rules = append(rules, pipeline.FaultRule{
				Stage: pipeline.StageCompile, Program: label(i),
				Action: pipeline.FaultPanic, Message: "chaos panic",
			})
		case 3:
			kinds[i] = chaosError
			rules = append(rules, pipeline.FaultRule{
				Stage: pipeline.StageCompile, Program: label(i),
				Action: pipeline.FaultError, Message: "chaos error",
			})
		case 5:
			kinds[i] = chaosDeadline
		case 7:
			kinds[i] = chaosSlowStage
			rules = append(rules, pipeline.FaultRule{
				Stage: pipeline.StageHarness, Program: label(i),
				Action: pipeline.FaultSleep, Delay: 150 * time.Millisecond,
			})
		default:
			kinds[i] = chaosHealthy
		}
	}
	inj := pipeline.NewInjector(1, rules...)
	defer pipeline.ArmFaults(inj)()

	srv := New(Config{
		MaxConcurrent: 8,
		QueueDepth:    N, // no shedding in this test: every request runs
		// High threshold: the breaker has its own test; here every
		// faulted request must reach the pipeline.
		BreakerThreshold: N,
		DefaultTimeout:   time.Minute,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type outcome struct {
		code int
		run  RunResponse
		errb ErrorBody
	}
	outcomes := make([]outcome, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := RunRequest{Label: label(i)}
			switch kinds[i] {
			case chaosDeadline:
				req.Source, req.TimeoutMS = loopProg, 60
			case chaosSlowStage:
				// The injected 150ms harness delay alone blows this
				// deadline; the runaway body makes the cancellation
				// land in the interpreter's polling.
				req.Source, req.TimeoutMS = loopProg, 60
			case chaosPanic, chaosError:
				// Unique source per faulted request keeps breaker keys
				// distinct from the healthy program's.
				req.Source = fmt.Sprintf("-- chaos %d\n%s", i, testProg)
			default:
				req.Source = testProg
				req.Config = cfgs[i%len(cfgs)].String()
				// Healthy requests alternate execution engines: the
				// admission path, breaker keys and one-shot expectations
				// are engine-agnostic, so both must produce the same
				// bytes under fire.
				req.Engine = engineNamesForChaos[i%2]
			}
			code, _, data := post(t, ts, req)
			o := outcome{code: code}
			if code == http.StatusOK {
				o.run = decodeRun(t, data)
			} else {
				o.errb = decodeErr(t, data)
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()

	wantPanics := 0
	for i, o := range outcomes {
		switch kinds[i] {
		case chaosHealthy:
			if o.code != http.StatusOK {
				t.Errorf("req-%d (healthy): status %d body %+v", i, o.code, o.errb)
				continue
			}
			want := expect[cfgs[i%len(cfgs)]]
			if o.run.Value != want.value || o.run.Output != want.output {
				t.Errorf("req-%d (healthy, %s): cross-request interference: got (%q, %q), one-shot (%q, %q)",
					i, cfgs[i%len(cfgs)], o.run.Value, o.run.Output, want.value, want.output)
			}
			if o.run.Engine != engineNamesForChaos[i%2] {
				t.Errorf("req-%d (healthy): engine = %q, requested %q",
					i, o.run.Engine, engineNamesForChaos[i%2])
			}
		case chaosPanic:
			wantPanics++
			if o.code != http.StatusInternalServerError || o.errb.Kind != KindPanic || o.errb.Stage != "compile" {
				t.Errorf("req-%d (panic): status %d body %+v", i, o.code, o.errb)
			}
		case chaosError:
			if o.code != http.StatusUnprocessableEntity || o.errb.Kind != KindProgram {
				t.Errorf("req-%d (error): status %d body %+v", i, o.code, o.errb)
			}
		case chaosDeadline, chaosSlowStage:
			if o.code != http.StatusGatewayTimeout || o.errb.Kind != KindDeadline {
				t.Errorf("req-%d (deadline): status %d body %+v", i, o.code, o.errb)
			}
		}
	}

	// Containment accounting: exactly the injected panics faulted, the
	// process survived all of them, and nothing is left in flight.
	h := srv.health()
	if h.Faulted != uint64(wantPanics) {
		t.Errorf("faulted = %d, want %d", h.Faulted, wantPanics)
	}
	if h.Served != N {
		t.Errorf("served = %d, want %d", h.Served, N)
	}
	if h.InFlight != 0 || h.Queued != 0 {
		t.Errorf("in_flight=%d queued=%d after storm", h.InFlight, h.Queued)
	}

	// The server still serves cleanly after the storm.
	code, _, data := post(t, ts, RunRequest{Source: testProg})
	if code != http.StatusOK {
		t.Fatalf("post-storm request: status %d: %s", code, data)
	}
	if got := decodeRun(t, data); got.Value != expect[opt.Base].value {
		t.Errorf("post-storm value = %q", got.Value)
	}
}

// TestDrainCompletesEveryAdmittedRequest: a drain beginning with
// requests both running and queued rejects only NEW arrivals; every
// request already past admission completes with a full result.
func TestDrainCompletesEveryAdmittedRequest(t *testing.T) {
	const workers, queued = 4, 4
	const N = workers + queued

	inj := pipeline.NewInjector(1, pipeline.FaultRule{
		Stage: pipeline.StageHarness, Program: "drain",
		Action: pipeline.FaultSleep, Delay: 200 * time.Millisecond,
	})
	defer pipeline.ArmFaults(inj)()

	srv := New(Config{MaxConcurrent: workers, QueueDepth: queued})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	want := oneShot(t, testProg, opt.Base)

	var wg sync.WaitGroup
	codes := make([]int, N)
	values := make([]string, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, data := post(t, ts, RunRequest{Source: testProg, Label: "drain"})
			codes[i] = code
			if code == http.StatusOK {
				values[i] = decodeRun(t, data).Value
			}
		}(i)
	}

	// Wait until the server is saturated (all slots busy, the rest
	// queued), then drain mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for srv.InFlight() < workers || srv.health().Queued < queued {
		if time.Now().After(deadline) {
			t.Fatalf("server never saturated: inflight=%d queued=%d", srv.InFlight(), srv.health().Queued)
		}
		time.Sleep(time.Millisecond)
	}
	srv.BeginDrain()

	// New arrivals are refused immediately...
	code, _, data := post(t, ts, RunRequest{Source: testProg})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain arrival: status %d: %s", code, data)
	}
	if eb := decodeErr(t, data); eb.Kind != KindDraining {
		t.Errorf("post-drain kind = %q", eb.Kind)
	}

	// ...while every admitted request — running or queued — completes.
	wg.Wait()
	for i := 0; i < N; i++ {
		if codes[i] != http.StatusOK || values[i] != want.Value {
			t.Errorf("admitted request %d dropped by drain: status %d value %q", i, codes[i], values[i])
		}
	}
	if fl := srv.InFlight(); fl != 0 {
		t.Errorf("in-flight after drain = %d", fl)
	}
}
