package server

// The durable profile endpoints: the serving face of internal/profdb.
//
//	POST /profiles/{program}  — validate an uploaded profile against the
//	                            named benchmark and log it durably; the
//	                            200 ack means the record is fsync'd.
//	GET  /profiles/{program}  — export the decayed aggregate in the same
//	                            wire format `specialize -use-profile`
//	                            reads.
//
// Ingest shares the /run admission semaphore: validating an upload
// parses and lowers the benchmark source (cached after the first), and
// the fsync is real I/O, so uploads must not be free while /run traffic
// is shed. Export is cheap and read-only and bypasses admission, like
// /metrics.

import (
	"errors"
	"io"
	"net/http"
	"time"

	"selspec/internal/driver"
	"selspec/internal/profdb"
	"selspec/internal/profile"
	"selspec/internal/programs"
)

// benchProgram returns the lowered IR for a registered benchmark,
// caching it: every upload for the same program validates against the
// same immutable IR, so one parse+lower serves them all.
func (s *Server) benchProgram(name string) (*driver.Pipeline, error) {
	if p, ok := s.benchCache.Load(name); ok {
		return p.(*driver.Pipeline), nil
	}
	b, ok := programs.ByName(name)
	if !ok {
		return nil, errUnknownBench
	}
	p, err := driver.LoadNamed(b.Name, b.Source)
	if err != nil {
		return nil, err
	}
	actual, _ := s.benchCache.LoadOrStore(name, p)
	return actual.(*driver.Pipeline), nil
}

var errUnknownBench = errors.New("unknown benchmark")

// profDBReady gates a /profiles request on the database's lifecycle
// state, writing the 503 itself when the database cannot serve yet
// (recovering: retry here shortly) or anymore (failed: restart me).
func (s *Server) profDBReady(w http.ResponseWriter) bool {
	db := s.cfg.ProfileDB
	switch db.State() {
	case profdb.StateReady:
		return true
	case profdb.StateRecovering:
		writeErr(w, http.StatusServiceUnavailable, ErrorBody{
			Kind:         KindRecovering,
			Error:        "profile database is replaying its WAL",
			RetryAfterMS: time.Second.Milliseconds(),
		})
	default:
		writeErr(w, http.StatusServiceUnavailable, ErrorBody{
			Kind:  KindStorage,
			Error: "profile database storage failed; worker restart required",
		})
	}
	return false
}

func (s *Server) handleProfileIngest(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, ErrorBody{Kind: KindDraining, Error: "server is draining"})
		return
	}
	if !s.profDBReady(w) {
		return
	}
	name := r.PathValue("program")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes))
	if err != nil {
		writeErr(w, http.StatusBadRequest, ErrorBody{Kind: KindBadRequest, Error: "reading body: " + err.Error()})
		return
	}

	// Validation parses benchmark source (first time) and the ingest
	// fsyncs: both are work the admission semaphore exists to bound.
	release, err := s.admit(r.Context())
	switch {
	case errors.Is(err, errShed):
		s.shed.Add(1)
		s.mShed.Inc()
		writeErr(w, http.StatusTooManyRequests, ErrorBody{
			Kind:         KindOverloaded,
			Error:        "admission queue full",
			RetryAfterMS: time.Second.Milliseconds(),
		})
		return
	case err != nil:
		writeErr(w, statusClientClosedRequest, ErrorBody{Kind: KindCanceled, Error: err.Error()})
		return
	}
	defer release()

	p, err := s.benchProgram(name)
	if err != nil {
		if errors.Is(err, errUnknownBench) {
			writeErr(w, http.StatusNotFound, ErrorBody{Kind: KindBadRequest, Error: "unknown benchmark " + name})
		} else {
			writeErr(w, http.StatusInternalServerError, ErrorBody{Kind: KindBadRequest, Error: err.Error()})
		}
		return
	}
	// Full referential validation against the bound program: ids in
	// range, weights sane, tuple arities matching. The database itself
	// only re-checks structure; this is the layer that knows the IR.
	cg := profile.NewCallGraph(p.Prog)
	if err := cg.UnmarshalInto(body); err != nil {
		s.cfg.ProfileDB.RecordReject()
		writeErr(w, http.StatusUnprocessableEntity, ErrorBody{Kind: KindBadProfile, Error: err.Error()})
		return
	}

	seq, err := s.cfg.ProfileDB.Ingest(name, cg.Wire())
	if err != nil {
		var rej *profdb.RejectError
		switch {
		case errors.As(err, &rej):
			writeErr(w, http.StatusUnprocessableEntity, ErrorBody{Kind: KindBadProfile, Error: rej.Msg})
		case errors.Is(err, profdb.ErrRecovering):
			writeErr(w, http.StatusServiceUnavailable, ErrorBody{
				Kind:         KindRecovering,
				Error:        "profile database is replaying its WAL",
				RetryAfterMS: time.Second.Milliseconds(),
			})
		default:
			// Durable write failed: the database is fail-stop and this
			// worker needs a restart to re-derive disk truth.
			writeErr(w, http.StatusServiceUnavailable, ErrorBody{Kind: KindStorage, Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Program: name, Seq: seq})
}

func (s *Server) handleProfileExport(w http.ResponseWriter, r *http.Request) {
	if !s.profDBReady(w) {
		return
	}
	name := r.PathValue("program")
	wire, err := s.cfg.ProfileDB.Export(name)
	if err != nil {
		switch {
		case errors.Is(err, profdb.ErrUnknownProgram):
			writeErr(w, http.StatusNotFound, ErrorBody{Kind: KindBadRequest, Error: "no profile aggregate for " + name})
		case errors.Is(err, profdb.ErrRecovering):
			writeErr(w, http.StatusServiceUnavailable, ErrorBody{
				Kind:         KindRecovering,
				Error:        "profile database is replaying its WAL",
				RetryAfterMS: time.Second.Milliseconds(),
			})
		default:
			writeErr(w, http.StatusServiceUnavailable, ErrorBody{Kind: KindStorage, Error: err.Error()})
		}
		return
	}
	data, err := wire.Marshal()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, ErrorBody{Kind: KindStorage, Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}
