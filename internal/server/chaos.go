package server

import (
	"time"

	"selspec/internal/pipeline"
)

// ChaosRules builds the fault rules `selspec serve -chaos` arms:
// seeded, probabilistic panics and slow stages at the per-request
// harness boundary. p is the total fault probability per request
// (split evenly between panic and delay); delay is the slow-stage
// duration (default 50ms). Chaos mode exists to demonstrate — against
// a live server, reproducibly — that injected faults surface as
// structured per-request errors and never take the process down.
func ChaosRules(p float64, delay time.Duration) []pipeline.FaultRule {
	if delay <= 0 {
		delay = 50 * time.Millisecond
	}
	return []pipeline.FaultRule{
		{
			Stage:       pipeline.StageHarness,
			Action:      pipeline.FaultPanic,
			Message:     "chaos: injected panic",
			Probability: p / 2,
		},
		{
			Stage:       pipeline.StageHarness,
			Action:      pipeline.FaultSleep,
			Delay:       delay,
			Probability: p / 2,
		},
	}
}
