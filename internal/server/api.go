package server

// The wire types of the specialization service. Everything is JSON;
// errors are always a structured ErrorBody, never a bare string, so
// clients (and the chaos tests) can match on Kind and Stage instead of
// scraping messages.

// RunRequest asks the service to run one Mini-Cecil program through
// the full pipeline (parse → build → check profile → specialize →
// compile → interpret) under one compiler configuration.
type RunRequest struct {
	// Source is the Mini-Cecil program text. Exactly one of Source and
	// Bench must be set.
	Source string `json:"source,omitempty"`
	// Bench names an embedded benchmark (Richards, InstSched, ...) to
	// run instead of posted source.
	Bench string `json:"bench,omitempty"`
	// Label names the request in diagnostics and contained-fault
	// reports (defaults to the bench name or "request").
	Label string `json:"label,omitempty"`
	// Config selects the compiler configuration (default Base).
	Config string `json:"config,omitempty"`
	// Dispatch selects the dispatch mechanism (default PIC).
	Dispatch string `json:"dispatch,omitempty"`
	// Engine selects the execution engine ("vm", the default, or
	// "tree"); vm falls back to tree per request on programs the
	// bytecode compiler does not support.
	Engine string `json:"engine,omitempty"`
	// Threshold overrides the Selective specialization threshold.
	Threshold int64 `json:"threshold,omitempty"`
	// TimeoutMS lowers the per-request deadline below the server
	// default; values above the server maximum are capped, not errors.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stats includes compile/run statistics in the response.
	Stats bool `json:"stats,omitempty"`
}

// RunStats mirrors the one-shot CLI's -stats output.
type RunStats struct {
	Dispatches      uint64 `json:"dispatches"`
	VersionSelects  uint64 `json:"version_selects"`
	Cycles          uint64 `json:"cycles"`
	StaticVersions  int    `json:"static_versions"`
	InvokedVersions int    `json:"invoked_versions"`
	IRNodes         int    `json:"ir_nodes"`
	WallNS          int64  `json:"wall_ns"`
}

// RunResponse is a successful run: the program's final value and its
// captured print output, byte-identical to a one-shot CLI run of the
// same program under the same configuration.
type RunResponse struct {
	Value  string    `json:"value"`
	Output string    `json:"output"`
	Config string    `json:"config"`
	Engine string    `json:"engine"`
	Stats  *RunStats `json:"stats,omitempty"`
}

// Error kinds, coarser than HTTP status codes: what went wrong and
// whether retrying can help.
const (
	KindBadRequest  = "bad_request"   // malformed request; do not retry
	KindOverloaded  = "overloaded"    // admission queue full; retry after backoff
	KindDraining    = "draining"      // server shutting down; retry elsewhere
	KindCircuitOpen = "circuit_open"  // this program keeps crashing; cooling down
	KindDeadline    = "deadline"      // per-request deadline exceeded
	KindCanceled    = "canceled"      // client went away mid-run
	KindPanic       = "panic"         // contained pipeline panic (isolated to this request)
	KindProgram     = "program_error" // ordinary program error (parse, runtime, guard trip)
)

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	Kind  string `json:"kind"`
	Error string `json:"error"`
	// Stage is the pipeline stage that faulted, when one did
	// (parse, compile, interp, harness, ...).
	Stage string `json:"stage,omitempty"`
	// RetryAfterMS hints when a retry may succeed (shedding, open
	// circuit); mirrored in the Retry-After header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Health is the /healthz and /readyz body: liveness plus the admission
// and containment counters an operator (or a drain test) watches.
type Health struct {
	Status       string `json:"status"` // "ok" or "draining"
	InFlight     int64  `json:"in_flight"`
	Queued       int64  `json:"queued"`
	Served       uint64 `json:"served"`
	Shed         uint64 `json:"shed"`
	Faulted      uint64 `json:"faulted"` // contained pipeline panics
	CircuitsOpen int    `json:"circuits_open"`
}
