package server

// The wire types of the specialization service. Everything is JSON;
// errors are always a structured ErrorBody, never a bare string, so
// clients (and the chaos tests) can match on Kind and Stage instead of
// scraping messages.

// RunRequest asks the service to run one Mini-Cecil program through
// the full pipeline (parse → build → check profile → specialize →
// compile → interpret) under one compiler configuration.
type RunRequest struct {
	// Source is the Mini-Cecil program text. Exactly one of Source and
	// Bench must be set.
	Source string `json:"source,omitempty"`
	// Bench names an embedded benchmark (Richards, InstSched, ...) to
	// run instead of posted source.
	Bench string `json:"bench,omitempty"`
	// Label names the request in diagnostics and contained-fault
	// reports (defaults to the bench name or "request").
	Label string `json:"label,omitempty"`
	// Config selects the compiler configuration (default Base).
	Config string `json:"config,omitempty"`
	// Dispatch selects the dispatch mechanism (default PIC).
	Dispatch string `json:"dispatch,omitempty"`
	// Engine selects the execution engine ("vm", the default, or
	// "tree"); vm falls back to tree per request on programs the
	// bytecode compiler does not support.
	Engine string `json:"engine,omitempty"`
	// Threshold overrides the Selective specialization threshold.
	Threshold int64 `json:"threshold,omitempty"`
	// TimeoutMS lowers the per-request deadline below the server
	// default; values above the server maximum are capped, not errors.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stats includes compile/run statistics in the response.
	Stats bool `json:"stats,omitempty"`
}

// RunStats mirrors the one-shot CLI's -stats output.
type RunStats struct {
	Dispatches      uint64 `json:"dispatches"`
	VersionSelects  uint64 `json:"version_selects"`
	Cycles          uint64 `json:"cycles"`
	StaticVersions  int    `json:"static_versions"`
	InvokedVersions int    `json:"invoked_versions"`
	IRNodes         int    `json:"ir_nodes"`
	WallNS          int64  `json:"wall_ns"`
}

// RunResponse is a successful run: the program's final value and its
// captured print output, byte-identical to a one-shot CLI run of the
// same program under the same configuration.
type RunResponse struct {
	Value  string    `json:"value"`
	Output string    `json:"output"`
	Config string    `json:"config"`
	Engine string    `json:"engine"`
	Stats  *RunStats `json:"stats,omitempty"`
}

// DeadlineHeader carries the caller's *remaining* request budget in
// milliseconds. The fleet router sets it on every proxied attempt so a
// retried request never exceeds the budget the client was originally
// promised: without it, router and worker would each apply their own
// -max-timeout independently and a retry could run for up to the sum
// of the two. A worker treats the header as an upper bound on the
// deadline it would otherwise pick — it can only shorten a request,
// never extend one past the server's own caps.
const DeadlineHeader = "X-Selspec-Deadline-Ms"

// Error kinds, coarser than HTTP status codes: what went wrong and
// whether retrying can help.
const (
	KindBadRequest  = "bad_request"   // malformed request; do not retry
	KindOverloaded  = "overloaded"    // admission queue full; retry after backoff
	KindDraining    = "draining"      // server shutting down; retry elsewhere
	KindCircuitOpen = "circuit_open"  // this program keeps crashing; cooling down
	KindDeadline    = "deadline"      // per-request deadline exceeded
	KindCanceled    = "canceled"      // client went away mid-run
	KindPanic       = "panic"         // contained pipeline panic (isolated to this request)
	KindProgram     = "program_error" // ordinary program error (parse, runtime, guard trip)

	// Profile-database kinds (the /profiles endpoints).
	KindRecovering = "profdb_recovering" // database replaying its WAL; retry after backoff
	KindStorage    = "storage_error"     // durable write failed; worker needs a restart
	KindBadProfile = "bad_profile"       // upload failed validation; do not retry
	KindNoProfDB   = "profdb_disabled"   // server not started with -profile-db
)

// IngestResponse acknowledges one durable profile upload. Seq is the
// database-wide sequence number the upload was logged under; by the
// time a client sees it, the record is fsync'd — a crash after the ack
// cannot lose it.
type IngestResponse struct {
	Program string `json:"program"`
	Seq     uint64 `json:"seq"`
}

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	Kind  string `json:"kind"`
	Error string `json:"error"`
	// Stage is the pipeline stage that faulted, when one did
	// (parse, compile, interp, harness, ...).
	Stage string `json:"stage,omitempty"`
	// RetryAfterMS hints when a retry may succeed (shedding, open
	// circuit); mirrored in the Retry-After header.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Health is the /healthz and /readyz body: liveness plus the admission
// and containment counters an operator (or a drain test) watches. The
// fleet router parses it off /readyz to distinguish a worker that is
// *draining* (alive, finishing admitted work, will not take more) from
// one that is *dead* (connection refused) — the two need different
// treatment: a draining worker leaves the ring quietly, a dead one is
// ejected and its process restarted.
type Health struct {
	Status       string `json:"status"` // "ok" or "draining"
	PID          int    `json:"pid"`    // the worker process; fleet restarts are visible as a new PID
	InFlight     int64  `json:"in_flight"`
	Queued       int64  `json:"queued"`
	Served       uint64 `json:"served"`
	Shed         uint64 `json:"shed"`
	Faulted      uint64 `json:"faulted"` // contained pipeline panics
	CircuitsOpen int    `json:"circuits_open"`
	// ProfDB is the profile database state ("recovering", "ready",
	// "failed"), empty when the server runs without one. A worker stays
	// ready for /run traffic while "recovering" — only the /profiles
	// endpoints wait for the WAL replay.
	ProfDB string `json:"profdb,omitempty"`
}
