package server

// Tests for the fleet-facing satellites on the single server: the
// propagated-deadline header, the ProgramKey identity the router
// hashes by, the PID in health bodies, and the jittered Retry-After
// hints on the circuit breaker.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"testing"
	"time"
)

// postWithHeader is post() plus arbitrary request headers.
func postWithHeader(t *testing.T, ts *httptest.Server, req RunRequest, hdr map[string]string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestDeadlineHeaderCapsRequestTimeout(t *testing.T) {
	// The server's own deadline would be 30s; a router that has only
	// 150ms of client budget left says so via the header, and the
	// worker must cut the run at the header's deadline, not its own.
	ts := httptest.NewServer(New(Config{DefaultTimeout: 30 * time.Second}).Handler())
	defer ts.Close()

	start := time.Now()
	code, data := postWithHeader(t, ts, RunRequest{Source: loopProg},
		map[string]string{DeadlineHeader: "150"})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s", code, data)
	}
	if eb := decodeErr(t, data); eb.Kind != KindDeadline {
		t.Errorf("kind %q, want deadline", eb.Kind)
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline took %v; the 150ms header budget was ignored", elapsed)
	}
}

func TestDeadlineHeaderNeverExtendsTimeout(t *testing.T) {
	// The header is an upper bound only: a client-requested 100ms
	// deadline stays 100ms even when the router's budget is generous.
	// This is the double-timeout fix in the other direction.
	ts := httptest.NewServer(New(Config{DefaultTimeout: 30 * time.Second}).Handler())
	defer ts.Close()

	start := time.Now()
	code, data := postWithHeader(t, ts, RunRequest{Source: loopProg, TimeoutMS: 100},
		map[string]string{DeadlineHeader: strconv.Itoa(60_000)})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s", code, data)
	}
	if elapsed > 5*time.Second {
		t.Errorf("run lasted %v; a 60s header must not extend a 100ms request deadline", elapsed)
	}
}

func TestDeadlineHeaderGarbageIgnored(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	for _, h := range []string{"", "abc", "-50", "0"} {
		code, data := postWithHeader(t, ts, RunRequest{Source: testProg},
			map[string]string{DeadlineHeader: h})
		if code != http.StatusOK {
			t.Errorf("header %q: status %d, body %s; garbage must not reject the run", h, code, data)
		}
	}
}

func TestProgramKeyIdentity(t *testing.T) {
	if ProgramKey(testProg, "") != ProgramKey(testProg, "") {
		t.Error("source key not deterministic")
	}
	if ProgramKey("", "Richards") != ProgramKey("", "Richards") {
		t.Error("bench key not deterministic")
	}
	if ProgramKey(testProg, "") == ProgramKey(loopProg, "") {
		t.Error("distinct sources collide")
	}
	// A source that happens to spell a benchmark name must not collide
	// with the benchmark's own key.
	if ProgramKey("Richards", "") == ProgramKey("", "Richards") {
		t.Error("source \"Richards\" collides with bench Richards")
	}
	// Bench wins when both are set, matching resolve's order.
	if ProgramKey(testProg, "Richards") != ProgramKey("", "Richards") {
		t.Error("bench should take precedence in key derivation")
	}
}

func TestHealthReportsPID(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var h Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if h.PID != os.Getpid() {
			t.Errorf("%s pid = %d, want %d", path, h.PID, os.Getpid())
		}
	}
}

func TestRetryJitterBounds(t *testing.T) {
	d := 8 * time.Second
	lo, hi := d+d, time.Duration(0)
	for i := 0; i < 2000; i++ {
		j := retryJitter(d)
		if j < d || j > d+d/4 {
			t.Fatalf("retryJitter(%v) = %v, outside [d, 5d/4]", d, j)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	if hi-lo < d/8 {
		t.Errorf("jitter spread only [%v, %v]; hints would stay in lockstep", lo, hi)
	}
	if got := retryJitter(0); got != 0 {
		t.Errorf("retryJitter(0) = %v, want 0", got)
	}
}

func TestBreakerRetryAfterIsJittered(t *testing.T) {
	b := newBreaker(1, 10*time.Second, 8)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	// Deterministic jitter for the assertion; production wiring is
	// covered by TestRetryJitterBounds.
	b.jitter = func(d time.Duration) time.Duration { return d + 17*time.Millisecond }

	b.record("k", true) // threshold 1: opens immediately
	ok, ra := b.allow("k")
	if ok {
		t.Fatal("circuit should be open")
	}
	if want := 10*time.Second + 17*time.Millisecond; ra != want {
		t.Errorf("retryAfter = %v, want cooldown+jitter %v", ra, want)
	}

	// Half-open trial in flight: the competing request's hint is the
	// jittered cooldown.
	now = now.Add(11 * time.Second)
	if ok, _ := b.allow("k"); !ok {
		t.Fatal("expired circuit should admit the half-open trial")
	}
	ok, ra = b.allow("k")
	if ok {
		t.Fatal("second request must not join the half-open trial")
	}
	if want := 10*time.Second + 17*time.Millisecond; ra != want {
		t.Errorf("half-open retryAfter = %v, want %v", ra, want)
	}
}
