package server

import (
	"math/rand"
	"sync"
	"time"
)

// breaker is a per-program circuit breaker: a program (keyed by a hash
// of its source) that repeatedly crashes the pipeline is rejected for a
// cooldown period instead of burning a worker slot on every attempt.
// Ordinary program errors (parse errors, runtime errors, guard trips)
// never open a circuit — only contained panics do, because those are
// the requests that cost a full pipeline run to discover and indicate
// an input that will keep crashing.
//
// States per key, classic three-state design:
//
//	closed    — requests flow; consecutive crash count accumulates
//	open      — requests rejected until the cooldown expires
//	half-open — one trial request is admitted; success closes the
//	            circuit, another crash re-opens it
type breaker struct {
	mu         sync.Mutex
	threshold  int           // consecutive crashes to open
	cooldown   time.Duration // open duration before a half-open trial
	maxEntries int           // bound on tracked programs
	entries    map[string]*circuit
	now        func() time.Time                  // injectable clock for tests
	jitter     func(time.Duration) time.Duration // spreads Retry-After hints; injectable for tests
}

type circuit struct {
	crashes   int       // consecutive crashes while closed
	openUntil time.Time // zero when closed
	trial     bool      // half-open probe in flight
	touched   time.Time // for eviction
}

func newBreaker(threshold int, cooldown time.Duration, maxEntries int) *breaker {
	return &breaker{
		threshold:  threshold,
		cooldown:   cooldown,
		maxEntries: maxEntries,
		entries:    make(map[string]*circuit),
		now:        time.Now,
		jitter:     retryJitter,
	}
}

// retryJitter spreads a Retry-After hint over [d, 5d/4). Every client
// that saw the circuit open got the same cooldown remaining, so
// without jitter they all re-arrive in the same instant and stampede
// the single half-open trial slot — most of them just see the circuit
// re-rejected and synchronize on the *next* hint too. A quarter-period
// of spread breaks the lockstep while never promising a retry earlier
// than the circuit could possibly admit one.
func retryJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration(rand.Int63n(int64(d)/4+1))
}

// allow reports whether a request for key may run now. When the
// circuit is open it returns false and how long to wait before
// retrying. An expired circuit admits exactly one half-open trial;
// concurrent requests for the same key keep being rejected until the
// trial reports back through record.
func (b *breaker) allow(key string) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.entries[key]
	if c == nil {
		return true, 0
	}
	now := b.now()
	c.touched = now
	if c.openUntil.IsZero() {
		return true, 0
	}
	if now.Before(c.openUntil) {
		return false, b.jitter(c.openUntil.Sub(now))
	}
	if c.trial {
		// A half-open probe is already running; stay rejected for
		// roughly one more cooldown rather than stampeding.
		return false, b.jitter(b.cooldown)
	}
	c.trial = true
	return true, 0
}

// record reports one completed run for key. crashed means the pipeline
// panicked (a contained fault), not that the program returned an
// ordinary error.
func (b *breaker) record(key string, crashed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.entries[key]
	if !crashed {
		if c != nil {
			delete(b.entries, key) // healthy again: forget the history
		}
		return
	}
	if c == nil {
		c = &circuit{}
		b.insert(key, c)
	}
	c.crashes++
	c.trial = false
	c.touched = b.now()
	if c.crashes >= b.threshold {
		c.openUntil = b.now().Add(b.cooldown)
	}
}

// openCount reports how many circuits are currently open.
func (b *breaker) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	now, n := b.now(), 0
	for _, c := range b.entries {
		if !c.openUntil.IsZero() && now.Before(c.openUntil) {
			n++
		}
	}
	return n
}

// insert adds a circuit, evicting the least-recently-touched entry
// when the table is full, so a stream of distinct crashing programs
// cannot grow server memory without bound.
func (b *breaker) insert(key string, c *circuit) {
	if len(b.entries) >= b.maxEntries {
		var oldestKey string
		var oldest time.Time
		for k, e := range b.entries {
			if oldestKey == "" || e.touched.Before(oldest) {
				oldestKey, oldest = k, e.touched
			}
		}
		delete(b.entries, oldestKey)
	}
	b.entries[key] = c
}
