package server

// Engine selection over the wire: the service must honor the engine
// field, echo which engine ran, produce byte-identical results (value,
// output, and observability stats) under both tiers, and reject names
// it does not know. The admission/breaker/drain machinery sits above
// the engine, so everything else in the suite is engine-invariant.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"selspec/internal/opt"
)

func TestRunEngineParity(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	for _, cfg := range opt.Configs() {
		var got [2]RunResponse
		engines := []string{"tree", "vm"}
		for j, eng := range engines {
			code, _, data := post(t, ts, RunRequest{
				Source: testProg,
				Config: cfg.String(),
				Engine: eng,
				Stats:  true,
			})
			if code != http.StatusOK {
				t.Fatalf("%s/%s: status %d: %s", cfg, eng, code, data)
			}
			got[j] = decodeRun(t, data)
			if got[j].Engine != eng {
				t.Errorf("%s: requested engine %q, response says %q", cfg, eng, got[j].Engine)
			}
		}
		tree, vm := got[0], got[1]
		if tree.Value != vm.Value || tree.Output != vm.Output {
			t.Errorf("%s: engines diverged: tree (%q, %q), vm (%q, %q)",
				cfg, tree.Value, tree.Output, vm.Value, vm.Output)
		}
		if tree.Stats == nil || vm.Stats == nil {
			t.Fatalf("%s: missing stats: tree %v, vm %v", cfg, tree.Stats, vm.Stats)
		}
		// WallNS is the one legitimately engine-dependent stat.
		ts, vs := *tree.Stats, *vm.Stats
		ts.WallNS, vs.WallNS = 0, 0
		if ts != vs {
			t.Errorf("%s: stats diverged:\n  tree: %+v\n  vm:   %+v", cfg, ts, vs)
		}
	}
}

func TestRunEngineDefaultsToVM(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	code, _, data := post(t, ts, RunRequest{Source: testProg})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	if got := decodeRun(t, data); got.Engine != "vm" {
		t.Errorf("default engine = %q, want \"vm\"", got.Engine)
	}
}

func TestRunRejectsUnknownEngine(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	code, _, data := post(t, ts, RunRequest{Source: testProg, Engine: "jit"})
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, data)
	}
	if eb := decodeErr(t, data); eb.Kind != KindBadRequest {
		t.Errorf("kind = %q, want %q", eb.Kind, KindBadRequest)
	}
}
