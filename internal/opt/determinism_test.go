package opt

import (
	"runtime"
	"testing"

	"selspec/internal/ir"
	"selspec/internal/lang"
	"selspec/internal/programs"
)

// TestCompileDeterminism: compiling the same program twice under the
// same configuration must produce byte-identical IR for every version
// (binding decisions, inlining order, slot assignment). Profiles,
// reports and EXPERIMENTS.md all rely on this.
func TestCompileDeterminism(t *testing.T) {
	src := programs.Sets().Source
	for _, cfg := range []Config{Base, Cust, CHA} {
		dump := func() map[string]string {
			prog, err := ir.Lower(lang.MustParse(src))
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compile(prog, Options{Config: cfg})
			if err != nil {
				t.Fatal(err)
			}
			out := map[string]string{}
			for _, m := range prog.H.Methods() {
				for _, v := range c.VersionsOf(m) {
					out[v.String()] = ir.Dump(v.Body)
				}
			}
			return out
		}
		a, b := dump(), dump()
		if len(a) != len(b) {
			t.Fatalf("%v: version counts differ: %d vs %d", cfg, len(a), len(b))
		}
		for k, va := range a {
			if vb, ok := b[k]; !ok || va != vb {
				t.Fatalf("%v: version %s differs between identical compiles", cfg, k)
			}
		}
	}
}

// TestParallelCompileDeterminism: the worker-pool eager compile must
// produce the same versions, bodies and statistics as a single-worker
// compile. GOMAXPROCS is forced up because the CI box may have 1 CPU,
// where compileAll degrades to the serial path.
func TestParallelCompileDeterminism(t *testing.T) {
	src := programs.Richards().Source
	dump := func() (map[string]string, Stats) {
		prog, err := ir.Lower(lang.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(prog, Options{Config: CHA})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]string{}
		for _, m := range prog.H.Methods() {
			for _, v := range c.VersionsOf(m) {
				out[v.String()] = ir.Dump(v.Body)
			}
		}
		return out, c.Stats()
	}

	prev := runtime.GOMAXPROCS(1)
	serialVersions, serialStats := dump()
	runtime.GOMAXPROCS(4)
	parVersions, parStats := dump()
	runtime.GOMAXPROCS(prev)

	if serialStats != parStats {
		t.Errorf("stats differ:\nserial   %+v\nparallel %+v", serialStats, parStats)
	}
	if len(serialVersions) != len(parVersions) {
		t.Fatalf("version counts differ: %d vs %d", len(serialVersions), len(parVersions))
	}
	for k, vs := range serialVersions {
		if vp, ok := parVersions[k]; !ok || vs != vp {
			t.Errorf("version %s differs between serial and parallel compile", k)
		}
	}
}

// TestStatsDeterminism: compile-time statistics are reproducible too.
func TestStatsDeterminism(t *testing.T) {
	src := programs.Richards().Source
	get := func() Stats {
		prog, err := ir.Lower(lang.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compile(prog, Options{Config: CHA})
		if err != nil {
			t.Fatal(err)
		}
		return c.Stats()
	}
	if a, b := get(), get(); a != b {
		t.Fatalf("stats differ:\n%+v\n%+v", a, b)
	}
}
