package opt

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"selspec/internal/hier"
	"selspec/internal/ir"
	"selspec/internal/lang"
)

func compile(t *testing.T, src string, opts Options) *Compiled {
	t.Helper()
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func methodByName(t *testing.T, c *Compiled, gf string, spec string) *hier.Method {
	t.Helper()
	for _, m := range c.Prog.H.Methods() {
		if m.GF.Name == gf && (spec == "" || m.Specs[0].Name == spec) {
			return m
		}
	}
	t.Fatalf("no method %s@%s", gf, spec)
	return nil
}

func countNodes[T ir.Node](body ir.Node) int {
	n := 0
	ir.Walk(body, func(nd ir.Node) bool {
		if _, ok := nd.(T); ok {
			n++
		}
		return true
	})
	return n
}

const optSrc = `
class A
class B isa A
class C isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method single(x@A) { 41; }
method caller(x@A) { x.m(); x.single(); }
method localExact() { var b := new B(); b.m(); }
method main() { caller(new C()); localExact(); }
`

func TestConfigString(t *testing.T) {
	want := []string{"Base", "Cust", "Cust-MM", "CHA", "Selective"}
	for i, cfg := range Configs() {
		if cfg.String() != want[i] {
			t.Errorf("config %d = %q", i, cfg)
		}
		back, err := ParseConfig(want[i])
		if err != nil || back != cfg {
			t.Errorf("ParseConfig(%q) = %v, %v", want[i], back, err)
		}
	}
	if _, err := ParseConfig("bogus"); err == nil {
		t.Error("ParseConfig(bogus) should fail")
	}
}

func TestBaseBindsLocalExactOnly(t *testing.T) {
	c := compile(t, optSrc, Options{Config: Base})

	// caller's sends stay dynamic under Base (formal info is Top).
	callerV := c.General(methodByName(t, c, "caller", "A"))
	if got := countNodes[*ir.Send](callerV.Body); got != 2 {
		t.Errorf("Base caller has %d dynamic sends, want 2", got)
	}
	// localExact's b.m() is statically bound (and inlined) via the
	// exact class of the freshly created object.
	lv := c.General(methodByName(t, c, "localExact", ""))
	if got := countNodes[*ir.Send](lv.Body); got != 0 {
		t.Errorf("Base localExact still has %d dynamic sends", got)
	}
}

func TestCHABindsSingleTargetOnFormals(t *testing.T) {
	c := compile(t, optSrc, Options{Config: CHA})
	callerV := c.General(methodByName(t, c, "caller", "A"))
	// x.m() has two applicable methods over cone(A): stays dynamic.
	// x.single() has one: statically bound (inlined, small body).
	if got := countNodes[*ir.Send](callerV.Body); got != 1 {
		t.Errorf("CHA caller has %d dynamic sends, want 1", got)
	}
}

func TestCustVersionsPerReceiverClass(t *testing.T) {
	c := compile(t, optSrc, Options{Config: Cust})
	mA := methodByName(t, c, "m", "A")
	// m@A applies to A and C (B overrides): two customized versions.
	if got := len(c.VersionsOf(mA)); got != 2 {
		t.Errorf("Cust versions of m@A = %d, want 2", got)
	}
	// Within a customized version of caller for receiver class B, x.m()
	// binds to m@B.
	callerB := findVersionWithClass(t, c, "caller", "B")
	if got := countNodes[*ir.Send](callerB.Body); got != 0 {
		t.Errorf("Cust caller@B has %d dynamic sends, want 0", got)
	}
}

func findVersionWithClass(t *testing.T, c *Compiled, gf string, class string) *ir.Version {
	t.Helper()
	cl, _ := c.Prog.H.Class(class)
	for _, m := range c.Prog.H.Methods() {
		if m.GF.Name != gf {
			continue
		}
		for _, v := range c.VersionsOf(m) {
			if v.Tuple[0].Len() == 1 && v.Tuple[0].Has(cl.ID) {
				if err := c.EnsureBody(v); err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
	}
	t.Fatalf("no version of %s for class %s", gf, class)
	return nil
}

func TestCustMMRequiresLazy(t *testing.T) {
	prog, err := ir.Lower(lang.MustParse(optSrc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog, Options{Config: CustMM}); err == nil {
		t.Fatal("eager Cust-MM should be rejected")
	}
	if _, err := Compile(prog, Options{Config: CustMM, Lazy: true}); err != nil {
		t.Fatalf("lazy Cust-MM: %v", err)
	}
}

func TestSelectiveRequiresDirectives(t *testing.T) {
	prog, err := ir.Lower(lang.MustParse(optSrc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog, Options{Config: Selective}); err == nil {
		t.Fatal("Selective without directives should be rejected")
	}
}

func TestSelectVersionRuntime(t *testing.T) {
	// Build Selective directives by hand: specialize m@A's caller... we
	// specialize method "caller" on {B} and {C}.
	prog, err := ir.Lower(lang.MustParse(optSrc))
	if err != nil {
		t.Fatal(err)
	}
	h := prog.H
	caller := func() *hier.Method {
		for _, m := range h.Methods() {
			if m.GF.Name == "caller" {
				return m
			}
		}
		return nil
	}()
	a, _ := h.Class("A")
	b, _ := h.Class("B")
	cc, _ := h.Class("C")

	gen := h.ApplicableClasses(caller).Clone()
	specB := gen.Clone()
	specB[0].Clear()
	specB[0].Add(b.ID)
	specC := gen.Clone()
	specC[0].Clear()
	specC[0].Add(cc.ID)

	c, err := Compile(prog, Options{
		Config:          Selective,
		Specializations: map[*hier.Method][]hier.Tuple{caller: {gen, specB, specC}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := c.SelectVersion(caller, []*hier.Class{b}); !v.Tuple[0].Equal(specB[0]) {
		t.Errorf("SelectVersion(B) = %v", v)
	}
	if v := c.SelectVersion(caller, []*hier.Class{cc}); !v.Tuple[0].Equal(specC[0]) {
		t.Errorf("SelectVersion(C) = %v", v)
	}
	if v := c.SelectVersion(caller, []*hier.Class{a}); !v.General {
		t.Errorf("SelectVersion(A) should be the general version, got %v", v)
	}
}

// TestSelectVersionMinimalUnique: on intersection-closed tuple sets the
// single-pass runtime selection finds the unique minimal containing
// tuple, matching a brute-force search, for random closed families.
func TestSelectVersionMinimalUnique(t *testing.T) {
	src := `
class A
class B isa A
class C isa A
class D isa B
method f(x@A, y@A) { 1; }
`
	prog, err := ir.Lower(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	h := prog.H
	f := h.Methods()[0]
	classes := []string{"A", "B", "C", "D"}
	rng := rand.New(rand.NewSource(11))

	for round := 0; round < 60; round++ {
		gen := h.GeneralTuple(f)
		tuples := []hier.Tuple{gen}
		// Random tuples, then close under intersection.
		for k := 0; k < 4; k++ {
			tpl := gen.Clone()
			for pos := 0; pos < 2; pos++ {
				tpl[pos].Clear()
				for _, cn := range classes {
					if rng.Intn(2) == 0 {
						cl, _ := h.Class(cn)
						tpl[pos].Add(cl.ID)
					}
				}
			}
			if tpl.HasEmpty() {
				continue
			}
			tuples = append(tuples, tpl)
		}
		for changed := true; changed; {
			changed = false
			for i := range tuples {
				for j := range tuples {
					inter := tuples[i].Intersect(tuples[j])
					if inter.HasEmpty() {
						continue
					}
					dup := false
					for _, u := range tuples {
						if u.Equal(inter) {
							dup = true
							break
						}
					}
					if !dup {
						tuples = append(tuples, inter)
						changed = true
					}
				}
			}
		}

		c, err := Compile(prog, Options{Config: Selective, Lazy: true,
			Specializations: map[*hier.Method][]hier.Tuple{f: tuples}})
		if err != nil {
			t.Fatal(err)
		}
		for _, n1 := range classes {
			for _, n2 := range classes {
				c1, _ := h.Class(n1)
				c2, _ := h.Class(n2)
				got := c.SelectVersion(f, []*hier.Class{c1, c2})
				// Brute force: minimal containing tuple.
				var best hier.Tuple
				for _, tpl := range tuples {
					if !tpl.ContainsIDs([]int{c1.ID, c2.ID}) {
						continue
					}
					if best == nil || tpl.SubsetOf(best) {
						best = tpl
					}
				}
				if !got.Tuple.Equal(best) {
					t.Fatalf("round %d: SelectVersion(%s,%s) picked %s, brute force %s",
						round, n1, n2, got.Tuple.String(h), best.String(h))
				}
			}
		}
	}
}

func TestCustMMLazyVersionCreation(t *testing.T) {
	c := compile(t, optSrc, Options{Config: CustMM, Lazy: true})
	m := methodByName(t, c, "m", "A")
	a, _ := c.Prog.H.Class("A")
	cc, _ := c.Prog.H.Class("C")
	before := len(c.VersionsOf(m))
	v1 := c.SelectVersion(m, []*hier.Class{a})
	v2 := c.SelectVersion(m, []*hier.Class{cc})
	v3 := c.SelectVersion(m, []*hier.Class{a}) // cached
	if v1 == v2 || v1 != v3 {
		t.Errorf("lazy Cust-MM version identity wrong")
	}
	if got := len(c.VersionsOf(m)); got != before+2 {
		t.Errorf("versions grew by %d, want 2", got-before)
	}
}

func TestInliningRespectsThresholdAndReturns(t *testing.T) {
	src := `
class A
method tiny(x@A) { 1; }
method hasReturn(x@A) { return 2; }
method caller(x@A) { x.tiny(); x.hasReturn(); }
method main() { caller(new A()); }
`
	c := compile(t, src, Options{Config: CHA})
	callerV := c.General(methodByName(t, c, "caller", "A"))
	// tiny is inlined; hasReturn is statically bound but NOT inlined
	// (its return would escape the caller).
	if got := countNodes[*ir.StaticCall](callerV.Body); got != 1 {
		t.Errorf("static calls = %d, want 1 (hasReturn)", got)
	}
	if got := countNodes[*ir.Send](callerV.Body); got != 0 {
		t.Errorf("dynamic sends = %d, want 0", got)
	}

	cNoInline := compile(t, src, Options{Config: CHA, DisableInlining: true})
	v2 := cNoInline.General(methodByName(t, cNoInline, "caller", "A"))
	if got := countNodes[*ir.StaticCall](v2.Body); got != 2 {
		t.Errorf("with inlining disabled, static calls = %d, want 2", got)
	}
}

func TestRecursionNotInlined(t *testing.T) {
	src := `
class A
method rec(x@A, n) { if n > 0 { x.rec(n - 1); } 0; }
method main() { rec(new A(), 3); }
`
	c := compile(t, src, Options{Config: CHA})
	v := c.General(methodByName(t, c, "rec", "A"))
	// The self-recursive call must remain a call (static), not unroll
	// forever.
	if got := countNodes[*ir.StaticCall](v.Body); got != 1 {
		t.Errorf("recursive static calls = %d, want 1", got)
	}
}

func TestClosureEliminationInDoLoop(t *testing.T) {
	// The paper's flagship optimization: after inlining do into each,
	// the closure literal is gone and its body runs inline in the loop.
	src := `
class L { field elems : Array := nil; field n : Int := 0; }
method do(s@L, body) {
  var i := 0;
  while i < s.n { body(aget(s.elems, i)); i := i + 1; }
}
method total(s@L) {
  var sum := 0;
  s.do(fn(x) { sum := sum + x; });
  sum;
}
method main() { total(new L(newarray(0), 0)); }
`
	c := compile(t, src, Options{Config: CHA})
	v := c.General(methodByName(t, c, "total", "L"))
	if got := countNodes[*ir.MakeClosure](v.Body); got != 0 {
		t.Errorf("closure not eliminated: %d MakeClosure nodes remain", got)
	}
	if got := countNodes[*ir.CallClosure](v.Body); got != 0 {
		t.Errorf("closure calls remain: %d", got)
	}
	if got := countNodes[*ir.Send](v.Body); got != 0 {
		t.Errorf("do send not inlined: %d sends", got)
	}
}

func TestClosureWritesPoisonAnalysis(t *testing.T) {
	// found must NOT be constant-folded to false: the closure writes it.
	src := `
class L { field elems : Array := nil; field n : Int := 0; }
method do(s@L, body) {
  var i := 0;
  while i < s.n { body(aget(s.elems, i)); i := i + 1; }
}
method has3(s@L) {
  var found := false;
  s.do(fn(x) { if x == 3 { found := true; } });
  if found { 1; } else { 0; }
}
method main() { has3(new L(newarray(0), 0)); }
`
	c := compile(t, src, Options{Config: CHA})
	v := c.General(methodByName(t, c, "has3", "L"))
	// The If on found must survive (not be folded away).
	if got := countNodes[*ir.If](v.Body); got == 0 {
		t.Error("the if on the closure-written variable was folded away")
	}
}

func TestConstantFolding(t *testing.T) {
	src := `method main() { 2 + 3 * 4; }`
	c := compile(t, src, Options{Config: Base})
	v := c.General(c.Prog.H.Methods()[0])
	k, ok := v.Body.(*ir.Const)
	if !ok || k.Int != 14 {
		t.Fatalf("not folded: %#v", v.Body)
	}
	// Division by zero must not fold (the runtime error is preserved).
	c2 := compile(t, `method main() { var x := 1 / 0; x; }`, Options{Config: Base})
	v2 := c2.General(c2.Prog.H.Methods()[0])
	if countNodes[*ir.Bin](v2.Body) != 1 {
		t.Error("1/0 should not be folded away")
	}
}

func TestFieldSlotResolution(t *testing.T) {
	src := `
class P { field x : Int := 0; }
method getx(p@P) { p.x; }
method main() { getx(new P(3)); }
`
	c := compile(t, src, Options{Config: CHA})
	v := c.General(methodByName(t, c, "getx", "P"))
	resolved := false
	ir.Walk(v.Body, func(n ir.Node) bool {
		if g, ok := n.(*ir.GetField); ok && g.Slot == 0 {
			resolved = true
		}
		return true
	})
	if !resolved {
		t.Error("field slot not resolved with exact receiver class set")
	}

	// Under Base the formal is Top: slot stays -1.
	cb := compile(t, src, Options{Config: Base})
	vb := cb.General(methodByName(t, cb, "getx", "P"))
	ir.Walk(vb.Body, func(n ir.Node) bool {
		if g, ok := n.(*ir.GetField); ok && g.Slot != -1 {
			t.Error("Base resolved a field slot without class info")
		}
		return true
	})
}

func TestGlobalConstInfo(t *testing.T) {
	// A never-assigned global carries its initializer's class: the send
	// binds. An assigned one does not.
	src := `
class A
class B isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
var constant := new B();
var mutated := new B();
method touch() { mutated := new A(); }
method useConst() { m(constant); }
method useMut() { m(mutated); }
method main() { touch(); useConst(); useMut(); }
`
	c := compile(t, src, Options{Config: Base})
	vc := c.General(methodByName(t, c, "useConst", ""))
	if got := countNodes[*ir.Send](vc.Body); got != 0 {
		t.Errorf("send on constant global not bound: %d sends", got)
	}
	vm := c.General(methodByName(t, c, "useMut", ""))
	if got := countNodes[*ir.Send](vm.Body); got != 1 {
		t.Errorf("send on mutated global should stay dynamic: %d sends", got)
	}
}

func TestFieldTypeInfoGating(t *testing.T) {
	src := `
class T
method only(x@T) { 7; }
class Holder { field t : T := nil; }
method use(h@Holder) { only(h.t); }
method main() { use(new Holder(new T())); }
`
	// CHA: h.t has cone(T) info, the send binds.
	c := compile(t, src, Options{Config: CHA})
	v := c.General(methodByName(t, c, "use", "Holder"))
	if got := countNodes[*ir.Send](v.Body); got != 0 {
		t.Errorf("CHA: typed field read did not bind the send (%d sends)", got)
	}
	// Base: no field type info.
	cb := compile(t, src, Options{Config: Base})
	vb := cb.General(methodByName(t, cb, "use", "Holder"))
	if got := countNodes[*ir.Send](vb.Body); got != 1 {
		t.Errorf("Base: send should stay dynamic (%d sends)", got)
	}
}

func TestStatsAndHistogram(t *testing.T) {
	c := compile(t, optSrc, Options{Config: Cust})
	s := c.Stats()
	if s.Versions < s.SourceMethods {
		t.Errorf("stats: versions %d < methods %d", s.Versions, s.SourceMethods)
	}
	if s.IRNodes == 0 || s.CompiledBodies != s.Versions {
		t.Errorf("stats: %+v", s)
	}
	h := c.SpecializationHistogram()
	if len(h) == 0 {
		t.Error("Cust should specialize at least one method")
	}
	for i := 1; i < len(h); i++ {
		if h[i] > h[i-1] {
			t.Error("histogram not sorted descending")
		}
	}
}

func TestStaticVersionCountCustMM(t *testing.T) {
	src := `
class A
class B isa A
method f(x@A, y@A) { 1; }
method g(x) { 2; }
method main() { f(new A(), new B()); g(1); }
`
	c := compile(t, src, Options{Config: CustMM, Lazy: true})
	// f: 2×2 combinations; g: 1; main: 1 → 6.
	if got := c.StaticVersionCount(); got != 6 {
		t.Errorf("StaticVersionCount = %d, want 6", got)
	}
}

func TestEliminateDeadKeepsEffects(t *testing.T) {
	src := `
method main() {
  var unused := 1 + 2;
  print("kept");
  7;
}
`
	c := compile(t, src, Options{Config: Base})
	v := c.General(c.Prog.H.Methods()[0])
	if got := countNodes[*ir.SetLocal](v.Body); got != 0 {
		t.Errorf("dead pure SetLocal survived: %d", got)
	}
	if got := countNodes[*ir.PrimCall](v.Body); got != 1 {
		t.Errorf("print was dropped: %d prim calls", got)
	}
}

func TestQuickFoldIntBinMatchesSemantics(t *testing.T) {
	ops := []ir.BinOp{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpLT, ir.OpLE, ir.OpGT, ir.OpGE, ir.OpEQ, ir.OpNE}
	f := func(l, r int32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		folded, ok := foldIntBin(op, int64(l), int64(r))
		if !ok {
			return false
		}
		k := folded.(*ir.Const)
		switch op {
		case ir.OpAdd:
			return k.Int == int64(l)+int64(r)
		case ir.OpSub:
			return k.Int == int64(l)-int64(r)
		case ir.OpMul:
			return k.Int == int64(l)*int64(r)
		case ir.OpLT:
			return k.Bool == (l < r)
		case ir.OpLE:
			return k.Bool == (l <= r)
		case ir.OpGT:
			return k.Bool == (l > r)
		case ir.OpGE:
			return k.Bool == (l >= r)
		case ir.OpEQ:
			return k.Bool == (l == r)
		default:
			return k.Bool == (l != r)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, ok := foldIntBin(ir.OpDiv, 1, 0); ok {
		t.Error("division by zero folded")
	}
	if _, ok := foldIntBin(ir.OpMod, 1, 0); ok {
		t.Error("modulo by zero folded")
	}
}

func TestCompileErrorOnBadSelectiveOpts(t *testing.T) {
	prog, err := ir.Lower(lang.MustParse(`method main() { 1; }`))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(prog, Options{Config: Selective})
	if err == nil || !strings.Contains(err.Error(), "Specializations") {
		t.Fatalf("err = %v", err)
	}
}
