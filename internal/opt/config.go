// Package opt is the optimizing middle end: it compiles lowered method
// bodies into per-version optimized IR under one of the five compiler
// configurations of the paper's Table 1 (Base, Cust, Cust-MM, CHA,
// Selective), performing intraprocedural class analysis, static binding
// of message sends, inlining, and closure elimination.
package opt

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"selspec/internal/bits"
	"selspec/internal/hier"
	"selspec/internal/ir"
)

// Config selects a compiler configuration (paper Table 1).
type Config int

// The five configurations evaluated in the paper.
const (
	// Base: intraprocedural class analysis, inlining, constant folding,
	// closure elimination, hard-wired prediction for primitives. One
	// compiled version per source method; formals carry no class info.
	Base Config = iota
	// Cust: Base + simple customization — one version per inheriting
	// class of the receiver (first dispatched) argument, as in Self,
	// Sather and Trellis.
	Cust
	// CustMM: Base + customization over every combination of dispatched
	// argument classes. Practical only with lazy (dynamic) compilation.
	CustMM
	// CHA: Base + class hierarchy analysis — formals are analyzed with
	// their applicable class sets, converting dynamically-bound calls
	// with no overriding methods into statically-bound ones.
	CHA
	// Selective: CHA + the paper's profile-guided selective
	// specialization algorithm (directives supplied via Options).
	Selective
)

var configNames = [...]string{"Base", "Cust", "Cust-MM", "CHA", "Selective"}

func (c Config) String() string {
	if int(c) < len(configNames) {
		return configNames[c]
	}
	return fmt.Sprintf("Config(%d)", int(c))
}

// ConfigNames returns the valid configuration names in paper order —
// the single source of truth for CLI help text and error messages.
func ConfigNames() []string { return append([]string(nil), configNames[:]...) }

// ParseConfig resolves a configuration name (as printed by String).
func ParseConfig(s string) (Config, error) {
	for i, n := range configNames {
		if n == s {
			return Config(i), nil
		}
	}
	return 0, fmt.Errorf("opt: unknown configuration %q (valid: %s)", s, strings.Join(configNames[:], ", "))
}

// Configs lists all configurations in paper order.
func Configs() []Config { return []Config{Base, Cust, CustMM, CHA, Selective} }

// Options controls compilation.
type Options struct {
	Config Config

	// Specializations supplies, for Selective, the specialization
	// tuples per method produced by the selective specialization
	// algorithm. Each list must include the method's general tuple and
	// be closed under pairwise non-empty intersection (the algorithm
	// guarantees both).
	Specializations map[*hier.Method][]hier.Tuple

	// InlineThreshold is the maximum callee source-body size (IR nodes)
	// eligible for inlining; 0 selects the default.
	InlineThreshold int
	// MaxInlineDepth bounds nested inlining; 0 selects the default.
	MaxInlineDepth int
	// DisableInlining turns inlining off (ablation of the indirect
	// benefit of static binding).
	DisableInlining bool

	// Lazy defers version body compilation to first invocation and, for
	// CustMM, creates version entries on demand — the paper's dynamic
	// compilation mode (§3.7.3, Figure 6 right).
	Lazy bool

	// InstantiationAnalysis restricts CHA/Selective class sets to
	// classes the program actually instantiates (plus builtins) — Rapid
	// Type Analysis in the style of Bacon & Sweeney, the natural
	// companion the Vortex line adopted after the paper. Never-created
	// classes cannot appear at run time, so excluding them from formal
	// and field-read sets is sound and lets more sends bind (e.g.
	// abstract intermediate classes stop blocking unique-target proofs).
	InstantiationAnalysis bool

	// ReturnTypeAnalysis enables the paper's §6 future-work extension:
	// "specializing callers for the return values of the called
	// methods, so that knowledge of the class of the return value can
	// be propagated to the caller". Statically-bound calls then carry
	// the callee version's computed return class set instead of Top,
	// letting callers bind further sends. Off by default to keep the
	// evaluation faithful to the published system.
	ReturnTypeAnalysis bool
}

const (
	defaultInlineThreshold = 48
	defaultMaxInlineDepth  = 4
)

func (o Options) inlineThreshold() int {
	if o.DisableInlining {
		return 0
	}
	if o.InlineThreshold == 0 {
		return defaultInlineThreshold
	}
	return o.InlineThreshold
}

func (o Options) maxInlineDepth() int {
	if o.MaxInlineDepth == 0 {
		return defaultMaxInlineDepth
	}
	return o.MaxInlineDepth
}

// methodVersions tracks the compiled versions of one method.
type methodVersions struct {
	list []*ir.Version
	// byKey indexes CustMM/Cust versions by dispatched-class key for
	// O(1) runtime selection and lazy instantiation.
	byKey map[string]*ir.Version
}

// Compiled is a program compiled under one configuration: optimized
// global and field initializers plus the version set of every method.
// It is the unit the interpreter executes.
type Compiled struct {
	Prog *ir.Program
	Opts Options

	GlobalInits []ir.Node
	FieldInits  map[*hier.Class][]ir.Node

	mu       sync.Mutex
	versions map[*hier.Method]*methodVersions

	// globalInfos[i] is the class info of global i: derived from the
	// initializer for never-assigned globals (sound because reading an
	// uninitialized global is a runtime error), Top otherwise.
	globalInfos []info

	// instantiated is the set of class IDs the program can create
	// (InstantiationAnalysis); nil when the analysis is off.
	instantiated *bits.Set

	// retInfo caches each compiled version's return class info
	// (ReturnTypeAnalysis); retInProgress breaks recursion cycles.
	retInfo       map[*ir.Version]info
	retInProgress map[*ir.Version]bool

	// Statistics. Atomic: method bodies compile on a worker pool and
	// each worker's analyzer bumps these; addition commutes, so the
	// totals stay deterministic under any compile order.
	inlinedCalls   atomic.Int64
	staticBound    atomic.Int64
	versionSelects atomic.Int64 // compile-time converted static→version-select
	lazyCompiles   atomic.Int64
}

// Compile compiles the program under the given options.
func Compile(p *ir.Program, opts Options) (*Compiled, error) {
	if opts.Config == Selective && opts.Specializations == nil {
		return nil, fmt.Errorf("opt: Selective configuration requires Specializations")
	}
	if opts.Config == CustMM && !opts.Lazy {
		return nil, fmt.Errorf("opt: Cust-MM is only supported with Lazy compilation (the paper: %q)",
			"Cust-MM is practical only for dynamic compilation systems")
	}
	c := &Compiled{
		Prog:          p,
		Opts:          opts,
		FieldInits:    map[*hier.Class][]ir.Node{},
		versions:      map[*hier.Method]*methodVersions{},
		retInfo:       map[*ir.Version]info{},
		retInProgress: map[*ir.Version]bool{},
	}

	if opts.InstantiationAnalysis {
		c.computeInstantiated()
	}
	c.computeGlobalInfos()

	// Define version entries for every method.
	for _, m := range p.H.Methods() {
		mv := &methodVersions{byKey: map[string]*ir.Version{}}
		c.versions[m] = mv
		for _, tpl := range c.versionTuples(m) {
			c.defineVersion(m, tpl)
		}
	}

	// Compile bodies eagerly unless lazy.
	if !opts.Lazy {
		var all []*ir.Version
		for _, m := range p.H.Methods() {
			all = append(all, c.versions[m].list...)
		}
		if err := c.compileAll(all); err != nil {
			return nil, err
		}
	}

	// Global and field initializers are always compiled (they run once;
	// formals do not exist, so the configuration matters little).
	for _, g := range p.Globals {
		n, err := c.optimizeTopLevel(g.Init)
		if err != nil {
			return nil, err
		}
		c.GlobalInits = append(c.GlobalInits, n)
	}
	for cls, inits := range p.FieldInits {
		out := make([]ir.Node, len(inits))
		for i, init := range inits {
			if init == nil {
				continue
			}
			n, err := c.optimizeTopLevel(init)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		c.FieldInits[cls] = out
	}
	return c, nil
}

// compileAll compiles every listed version body, fanning out over a
// GOMAXPROCS-sized worker pool. Versions are independent except for
// return-type analysis, whose recursion-cycle cutoff depends on
// compile order — that mode stays serial so bodies remain
// deterministic. Per-version outcomes land in a slot array and the
// lowest-index error wins, so failures are deterministic too.
func (c *Compiled) compileAll(all []*ir.Version) error {
	workers := runtime.GOMAXPROCS(0)
	if c.Opts.ReturnTypeAnalysis || workers < 2 || len(all) < 2 {
		for _, v := range all {
			if err := c.EnsureBody(v); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > len(all) {
		workers = len(all)
	}
	errs := make([]error, len(all))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(errs) {
					return
				}
				errs[i] = ensureBodyContained(c, all[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ensureBodyContained compiles one version with a panic boundary. The
// pool's goroutines cannot rely on the pipeline guard on the calling
// goroutine — a recover never crosses goroutines — so a compiler panic
// here must become this version's error slot, not a process abort.
func ensureBodyContained(c *Compiled, v *ir.Version) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("compile %v panicked: %v\n%s", v, r, debug.Stack())
		}
	}()
	return c.EnsureBody(v)
}

// versionTuples lists the specialization tuples to define eagerly for a
// method under the current configuration.
func (c *Compiled) versionTuples(m *hier.Method) []hier.Tuple {
	h := c.Prog.H
	switch c.Opts.Config {
	case Base:
		return []hier.Tuple{h.GeneralTuple(m)}

	case CHA:
		return []hier.Tuple{c.generalTuple(m)}

	case Cust:
		// One version per class inheriting the method at the receiver
		// position (the first dispatched position). Methods whose GF
		// does not dispatch keep a single general version.
		pos := receiverPos(m.GF)
		if pos < 0 {
			return []hier.Tuple{h.GeneralTuple(m)}
		}
		app := h.ApplicableClasses(m)
		var out []hier.Tuple
		for _, id := range app[pos].Elems() {
			t := h.GeneralTuple(m)
			t[pos].Clear()
			t[pos].Add(id)
			out = append(out, t)
		}
		if len(out) == 0 {
			// Method unreachable by dispatch (fully shadowed): keep a
			// general version so static calls still have a target.
			out = []hier.Tuple{h.GeneralTuple(m)}
		}
		return out

	case CustMM:
		// Defined lazily from actual argument classes; start with the
		// general fallback so statically-reached calls have a target.
		return []hier.Tuple{h.GeneralTuple(m)}

	case Selective:
		if tuples, ok := c.Opts.Specializations[m]; ok && len(tuples) > 0 {
			out := make([]hier.Tuple, len(tuples))
			copy(out, tuples)
			return out
		}
		return []hier.Tuple{c.generalTuple(m)}
	}
	panic("opt: unknown config")
}

// generalTuple is the tuple used for the single version under CHA-like
// configurations: the exact ApplicableClasses when available, otherwise
// the always-safe cone tuple.
func (c *Compiled) generalTuple(m *hier.Method) hier.Tuple {
	h := c.Prog.H
	if app, exact := h.ApplicableClassesExact(m); exact {
		return app.Clone()
	}
	return h.GeneralTuple(m)
}

// receiverPos returns the first dispatched position of a GF, or -1.
func receiverPos(g *hier.GF) int {
	for _, p := range g.DispatchedPositions() {
		return p
	}
	return -1
}

// defineVersion registers a version entry (body compiled later).
func (c *Compiled) defineVersion(m *hier.Method, tpl hier.Tuple) *ir.Version {
	mv := c.versions[m]
	v := &ir.Version{
		Method:  m,
		Tuple:   tpl,
		Index:   len(mv.list),
		General: len(mv.list) == 0 && c.isGeneralTuple(m, tpl),
	}
	mv.list = append(mv.list, v)
	if key, ok := c.dispatchKey(m, tpl); ok {
		mv.byKey[key] = v
	}
	return v
}

func (c *Compiled) isGeneralTuple(m *hier.Method, tpl hier.Tuple) bool {
	switch c.Opts.Config {
	case Base, CustMM:
		return tpl.Equal(c.Prog.H.GeneralTuple(m))
	case CHA, Selective:
		return tpl.Equal(c.generalTuple(m))
	case Cust:
		return receiverPos(m.GF) < 0
	}
	return false
}

// dispatchKey builds the exact-class selection key for Cust/CustMM
// version tuples: the concatenation of singleton dispatched-position
// class IDs. Returns false when the tuple is not keyed that way.
func (c *Compiled) dispatchKey(m *hier.Method, tpl hier.Tuple) (string, bool) {
	var positions []int
	switch c.Opts.Config {
	case Cust:
		p := receiverPos(m.GF)
		if p < 0 {
			return "", false
		}
		positions = []int{p}
	case CustMM:
		positions = m.GF.DispatchedPositions()
		if len(positions) == 0 {
			return "", false
		}
	default:
		return "", false
	}
	key := make([]byte, 0, 2*len(positions))
	for _, p := range positions {
		if tpl[p].Len() != 1 {
			return "", false
		}
		id := tpl[p].Min()
		key = append(key, byte(id), byte(id>>8))
	}
	return string(key), true
}

func classesKey(positions []int, classes []*hier.Class) string {
	key := make([]byte, 0, 2*len(positions))
	for _, p := range positions {
		id := classes[p].ID
		key = append(key, byte(id), byte(id>>8))
	}
	return string(key)
}

// VersionsOf returns the currently defined versions of a method.
func (c *Compiled) VersionsOf(m *hier.Method) []*ir.Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*ir.Version(nil), c.versions[m].list...)
}

// General returns the method's general (fallback) version.
func (c *Compiled) General(m *hier.Method) *ir.Version {
	for _, v := range c.versions[m].list {
		if v.General {
			return v
		}
	}
	return c.versions[m].list[0]
}

// SelectVersion picks the version of m to run for the given actual
// argument classes — the paper's §3.5 run-time selection. For Cust and
// Cust-MM it keys on exact classes (creating the version lazily for
// Cust-MM); for Selective it returns the unique minimal specialization
// tuple containing the actuals (uniqueness follows from intersection
// closure); for Base/CHA it returns the single version.
func (c *Compiled) SelectVersion(m *hier.Method, classes []*hier.Class) *ir.Version {
	mv := c.versions[m]
	switch c.Opts.Config {
	case Base, CHA:
		return mv.list[0]

	case Cust:
		p := receiverPos(m.GF)
		if p < 0 {
			return mv.list[0]
		}
		if v, ok := mv.byKey[classesKey([]int{p}, classes)]; ok {
			return v
		}
		return c.General(m)

	case CustMM:
		positions := m.GF.DispatchedPositions()
		if len(positions) == 0 {
			return mv.list[0]
		}
		key := classesKey(positions, classes)
		c.mu.Lock()
		v, ok := mv.byKey[key]
		if !ok {
			tpl := c.Prog.H.GeneralTuple(m)
			for _, p := range positions {
				tpl[p].Clear()
				tpl[p].Add(classes[p].ID)
			}
			v = &ir.Version{Method: m, Tuple: tpl, Index: len(mv.list)}
			mv.list = append(mv.list, v)
			mv.byKey[key] = v
		}
		c.mu.Unlock()
		return v

	case Selective:
		ids := make([]int, len(classes))
		for i, cl := range classes {
			ids[i] = cl.ID
		}
		var best *ir.Version
		for _, v := range mv.list {
			if v.Tuple.ContainsIDs(ids) && (best == nil || v.Tuple.SubsetOf(best.Tuple)) {
				best = v
			}
		}
		if best == nil {
			best = c.General(m) // approximate-applicable fallback
		}
		return best
	}
	panic("opt: unknown config")
}

// Stats reports compile-time statistics.
type Stats struct {
	Config          Config
	Versions        int // defined versions (lazy: includes uncompiled)
	CompiledBodies  int
	IRNodes         int // total IR nodes across compiled bodies
	InlinedCalls    int
	StaticBound     int
	VersionSelects  int
	LazyCompiles    int
	SourceMethods   int
	SpecializedMeth int // methods with >1 version
}

// Stats computes statistics over the current compilation state.
func (c *Compiled) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Config:         c.Opts.Config,
		InlinedCalls:   int(c.inlinedCalls.Load()),
		StaticBound:    int(c.staticBound.Load()),
		VersionSelects: int(c.versionSelects.Load()),
		LazyCompiles:   int(c.lazyCompiles.Load()),
		SourceMethods:  len(c.Prog.H.Methods()),
	}
	for _, m := range c.Prog.H.Methods() {
		mv := c.versions[m]
		s.Versions += len(mv.list)
		if len(mv.list) > 1 {
			s.SpecializedMeth++
		}
		for _, v := range mv.list {
			if v.Body != nil {
				s.CompiledBodies++
				s.IRNodes += ir.Size(v.Body)
			}
		}
	}
	return s
}

// StaticVersionCount returns the number of versions a fully static
// (eager) compile would produce under this configuration. For Cust-MM
// this is computed analytically (the paper reports it the same way: the
// code-space requirements "make it impractical for statically-compiled
// systems").
func (c *Compiled) StaticVersionCount() int {
	h := c.Prog.H
	total := 0
	for _, m := range h.Methods() {
		switch c.Opts.Config {
		case CustMM:
			positions := m.GF.DispatchedPositions()
			if len(positions) == 0 {
				total++
				continue
			}
			app := h.ApplicableClasses(m)
			n := 1
			for _, p := range positions {
				n *= app[p].Len()
			}
			if n == 0 {
				n = 1 // unreachable method still has its source version
			}
			total += n
		default:
			total += len(c.versions[m].list)
		}
	}
	return total
}

// InvokedVersionCount counts versions whose bodies were actually
// compiled (in lazy mode: invoked at least once) — Figure 6 right.
func (c *Compiled) InvokedVersionCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, mv := range c.versions {
		for _, v := range mv.list {
			if v.Body != nil {
				n++
			}
		}
	}
	return n
}

// SpecializationHistogram returns, for methods with more than one
// version, the number of versions per such method, sorted descending
// (paper §3.2: "an average of 1.9 specializations per method receiving
// any specializations, with a maximum of 8").
func (c *Compiled) SpecializationHistogram() []int {
	var out []int
	for _, m := range c.Prog.H.Methods() {
		if n := len(c.versions[m].list); n > 1 {
			out = append(out, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
