package opt

import (
	"testing"

	"selspec/internal/ir"
)

// A program with a never-instantiated subclass: plain CHA must keep the
// send dynamic (Fancy could override behaviour), but instantiation
// analysis knows no Fancy instance can ever exist.
const rtaSrc = `
class Widget
class Fancy isa Widget
method draw(w@Widget) { 1; }
method draw(w@Fancy) { 2; }
method render(w@Widget) { w.draw(); }
method main() { render(new Widget()); }
`

func TestInstantiationAnalysisBindsDeadOverriders(t *testing.T) {
	plain := compile(t, rtaSrc, Options{Config: CHA})
	vPlain := plain.General(methodByName(t, plain, "render", "Widget"))
	if got := countNodes[*ir.Send](vPlain.Body); got != 1 {
		t.Fatalf("plain CHA should keep draw dynamic: %d sends", got)
	}

	rta := compile(t, rtaSrc, Options{Config: CHA, InstantiationAnalysis: true})
	vRTA := rta.General(methodByName(t, rta, "render", "Widget"))
	if got := countNodes[*ir.Send](vRTA.Body); got != 0 {
		t.Fatalf("RTA should bind draw (Fancy never instantiated): %d sends", got)
	}
}

func TestInstantiationAnalysisRespectsActualNews(t *testing.T) {
	src := rtaSrc[:len(rtaSrc)-len("method main() { render(new Widget()); }\n")] +
		"method main() { render(new Widget()); render(new Fancy()); }\n"
	rta := compile(t, src, Options{Config: CHA, InstantiationAnalysis: true})
	v := rta.General(methodByName(t, rta, "render", "Widget"))
	if got := countNodes[*ir.Send](v.Body); got != 1 {
		t.Fatalf("Fancy IS instantiated here; draw must stay dynamic: %d sends", got)
	}
}

func TestInstantiationAnalysisSemanticsPreserved(t *testing.T) {
	// All builtins remain live: literals and primitives still analyze.
	src := `
class A
method f(x@A) { 40; }
method main() {
  var s := "x" + "y";
  var n := strlen(s);
  f(new A()) + n;
}
`
	c := compile(t, src, Options{Config: CHA, InstantiationAnalysis: true})
	v := c.General(methodByName(t, c, "main", ""))
	// Everything folds/binds; no dynamic sends left.
	if got := countNodes[*ir.Send](v.Body); got != 0 {
		t.Fatalf("main still has %d sends", got)
	}
}
