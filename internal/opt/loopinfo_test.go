package opt

import (
	"testing"

	"selspec/internal/ir"
)

// Regression test for loop analysis precision: a loop counter assigned
// arithmetically inside the loop must stay {Int}, so sends dispatched
// on an @Int position inside the loop still bind under CHA. (An early
// version widened every loop-assigned slot to Top, which silently
// killed most loop-resident bindings.)
func TestLoopCounterStaysInt(t *testing.T) {
	src := `
class V { field n : Int := 0; }
method at(v@V, i@Int) { v.n + i; }
method scan(v@V) {
  var total := 0;
  var i := 10;
  while i > 0 {
    total := total + v.at(i);
    i := i - 1;
  }
  total;
}
method main() { scan(new V(5)); }
`
	c := compile(t, src, Options{Config: CHA})
	v := c.General(methodByName(t, c, "scan", "V"))
	if got := countNodes[*ir.Send](v.Body); got != 0 {
		t.Fatalf("at(@V,@Int) did not bind inside the loop: %d dynamic sends\n%s",
			got, ir.Dump(v.Body))
	}
}

// A loop variable assigned from an unanalyzable source (a send result)
// must still widen to Top — the syntactic bound cannot pretend to know
// better.
func TestLoopVarFromSendWidens(t *testing.T) {
	src := `
class A
class B isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method next(x@A) { x; }
method churn(x@A) {
  var cur := x;
  var i := 0;
  var total := 0;
  while i < 3 {
    total := total + cur.m();
    cur := cur.next();
    i := i + 1;
  }
  total;
}
method main() { churn(new B()); }
`
	c := compile(t, src, Options{Config: CHA})
	v := c.General(methodByName(t, c, "churn", "A"))
	// cur widens to Top (assigned from a send), so cur.m() must remain
	// dynamic even under CHA — binding it would be unsound if next were
	// overridden later... more to the point, Top means no proof.
	if got := countNodes[*ir.Send](v.Body); got == 0 {
		t.Fatalf("cur.m() was bound despite cur coming from a send:\n%s", ir.Dump(v.Body))
	}
}

// Accumulators built with '+' keep the {Int,String} bound, which is
// enough to bind methods specialized on neither.
func TestLoopAccumulatorBound(t *testing.T) {
	src := `
class A
method onInt(x@Int) { x; }
method main() {
  var acc := 0;
  var i := 0;
  while i < 4 {
    acc := acc + i;
    i := i + 1;
  }
  onInt(acc);
}
`
	// acc's quick bound is {Int,String} (+ can be either); onInt is
	// dispatched on @Int, so the product {Int,String} contains String,
	// which doesn't understand onInt → stays dynamic. This pins the
	// *conservative* side of the bound.
	c := compile(t, src, Options{Config: CHA})
	v := c.General(methodByName(t, c, "main", ""))
	if got := countNodes[*ir.Send](v.Body); got != 1 {
		t.Fatalf("onInt(acc) should stay dynamic under the {Int,String} bound: %d sends", got)
	}
}

// Nested loops: the inner loop's counter bound must not leak Top into
// the outer counter.
func TestNestedLoopCounters(t *testing.T) {
	src := `
class V { field n : Int := 0; }
method at(v@V, i@Int) { v.n + i; }
method scan2(v@V) {
  var total := 0;
  var i := 0;
  while i < 3 {
    var j := 0;
    while j < 3 {
      total := total + v.at(i) + v.at(j);
      j := j + 1;
    }
    i := i + 1;
  }
  total;
}
method main() { scan2(new V(1)); }
`
	c := compile(t, src, Options{Config: CHA})
	v := c.General(methodByName(t, c, "scan2", "V"))
	if got := countNodes[*ir.Send](v.Body); got != 0 {
		t.Fatalf("nested loop counters lost Int: %d dynamic sends", got)
	}
}
