package opt

import (
	"testing"

	"selspec/internal/ir"
	"selspec/internal/lang"
)

// The §6 extension: with return-type analysis, a statically-bound call
// to a constructor-like method gives the caller enough class
// information to bind further sends.
const retSrc = `
class Shape
class Circle isa Shape
class Square isa Shape

method mkCircle() { new Circle(); }
method describe(s@Circle) { "circle"; }
method describe(s@Square) { "square"; }

-- mkCircle's result is always a Circle; with return-type analysis the
-- describe send binds statically.
method f() {
  var s := mkCircle();
  describe(s);
}

-- Returns through 'return' statements participate too.
method pick(k@Int) {
  if k > 0 { return new Circle(); }
  new Circle();
}
method g() { describe(pick(3)); }

-- Mixed return classes: the union must be used (no bind possible here
-- since describe has two applicable methods over {Circle, Square}).
method pickMixed(k@Int) {
  if k > 0 { return new Circle(); }
  new Square();
}
method h() { describe(pickMixed(3)); }

method main() { f(); g(); h(); 0; }
`

func sendCount(body ir.Node) int { return countNodes[*ir.Send](body) }

func TestReturnTypeAnalysisBindsCallers(t *testing.T) {
	// mkCircle and pick are too small to escape inlining at the default
	// threshold, which would make the test vacuous; disable inlining so
	// the StaticCall return-info path itself is exercised.
	on := compile(t, retSrc, Options{Config: CHA, ReturnTypeAnalysis: true, DisableInlining: true})
	off := compile(t, retSrc, Options{Config: CHA, DisableInlining: true})

	fOn := on.General(methodByName(t, on, "f", ""))
	fOff := off.General(methodByName(t, off, "f", ""))
	if got := sendCount(fOn.Body); got != 0 {
		t.Errorf("with return types, f still has %d dynamic sends", got)
	}
	if got := sendCount(fOff.Body); got != 1 {
		t.Errorf("without return types, f should keep 1 dynamic send, has %d", got)
	}

	gOn := on.General(methodByName(t, on, "g", ""))
	if got := sendCount(gOn.Body); got != 0 {
		t.Errorf("returns through 'return' not propagated: %d sends", got)
	}

	// Mixed returns give {Circle, Square}: describe stays dynamic.
	hOn := on.General(methodByName(t, on, "h", ""))
	if got := sendCount(hOn.Body); got != 1 {
		t.Errorf("mixed return classes must not bind describe: %d sends", got)
	}
}

func TestReturnTypeAnalysisRecursionDegradesToTop(t *testing.T) {
	src := `
class A
class B isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method loop(k@Int) {
  if k <= 0 { return new B(); }
  loop(k - 1);
}
method use() { m(loop(5)); }
method main() { use(); 0; }
`
	c := compile(t, src, Options{Config: CHA, ReturnTypeAnalysis: true, DisableInlining: true})
	// loop is self-recursive: its return info degrades to Top during
	// its own compilation, so use() must keep the dynamic send (it is
	// allowed to bind only if the cycle were resolved with a fixpoint,
	// which we deliberately do not do).
	v := c.General(methodByName(t, c, "use", ""))
	if got := sendCount(v.Body); got != 1 {
		t.Errorf("recursive return info should degrade to Top: %d sends", got)
	}
	// And the program still runs correctly (soundness).
}

func TestReturnTypeAnalysisResultsUnchanged(t *testing.T) {
	// The extension must not change program semantics.
	progSrc := retSrc
	for _, rta := range []bool{false, true} {
		prog, err := ir.Lower(lang.MustParse(progSrc))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Compile(prog, Options{Config: CHA, ReturnTypeAnalysis: rta}); err != nil {
			t.Fatalf("rta=%t: %v", rta, err)
		}
	}
}
