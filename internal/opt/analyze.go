package opt

import (
	"fmt"

	"selspec/internal/bits"
	"selspec/internal/hier"
	"selspec/internal/ir"
)

// info is the intraprocedural class-analysis lattice value for one
// expression or frame slot: either Top (any class) or a finite set of
// possible classes. It additionally tracks, for copy propagation, a
// closure literal known to be the slot's current value.
type info struct {
	top     bool
	set     *bits.Set
	closure *ir.MakeClosure // non-nil: value is definitely this literal
}

func topInfo() info { return info{top: true} }

func setInfo(s *bits.Set) info { return info{set: s} }

func exactInfo(h *hier.Hierarchy, c *hier.Class) info {
	s := bits.New(h.NumClasses())
	s.Add(c.ID)
	return info{set: s}
}

// join computes the lattice join of two infos.
func join(a, b info) info {
	if a.top || b.top {
		return topInfo()
	}
	out := info{set: bits.Union(a.set, b.set)}
	if a.closure != nil && a.closure == b.closure {
		out.closure = a.closure
	}
	return out
}

// aframe is the analysis state of one lexical frame.
type aframe struct {
	infos    []info
	size     int          // current frame size (grows as slots are inlined in)
	poisoned map[int]bool // slots writable by escaped closures: always Top
	isMethod bool
}

func newAFrame(size int, isMethod bool) *aframe {
	f := &aframe{infos: make([]info, size), size: size, poisoned: map[int]bool{}, isMethod: isMethod}
	for i := range f.infos {
		f.infos[i] = topInfo()
	}
	return f
}

func (f *aframe) get(slot int) info {
	if f.poisoned[slot] || slot >= len(f.infos) {
		return topInfo()
	}
	return f.infos[slot]
}

func (f *aframe) set(slot int, in info) {
	for slot >= len(f.infos) {
		f.infos = append(f.infos, topInfo())
	}
	if f.poisoned[slot] {
		return
	}
	f.infos[slot] = in
}

func (f *aframe) snapshot() []info {
	out := make([]info, len(f.infos))
	copy(out, f.infos)
	return out
}

func (f *aframe) restore(s []info) {
	f.infos = f.infos[:0]
	f.infos = append(f.infos, s...)
}

// analyzer performs the combined class-analysis / static-binding /
// inlining / folding pass over one compiled body.
type analyzer struct {
	c           *Compiled
	h           *hier.Hierarchy
	version     *ir.Version // nil for top-level (global/field) code
	frames      []*aframe   // frames[0] is the method frame
	inlineStack []*hier.Method
	depth       int

	// retJoin accumulates the class info of every Return in the
	// version's own body (ReturnTypeAnalysis); the body's final value
	// info joins in at the end.
	retJoin    info
	retTracked bool
}

// EnsureBody compiles the body of a version if it has not been compiled
// yet (the lazy-compilation entry point; eager compilation calls it for
// every version up front).
func (c *Compiled) EnsureBody(v *ir.Version) error {
	// Note: the body is built outside the lock because optimization may
	// itself take the lock (Cust-MM lazily defines versions for
	// statically-bound calls it discovers).
	c.mu.Lock()
	if v.Body != nil {
		c.mu.Unlock()
		return nil
	}
	src := c.Prog.Bodies[v.Method]
	if src == nil {
		c.mu.Unlock()
		return fmt.Errorf("opt: no source body for %s", v.Method.Name())
	}
	if c.Opts.Lazy {
		c.lazyCompiles.Add(1)
	}
	c.mu.Unlock()
	if c.Opts.ReturnTypeAnalysis {
		c.mu.Lock()
		c.retInProgress[v] = true
		c.mu.Unlock()
	}

	a := &analyzer{c: c, h: c.Prog.H, version: v}
	a.retJoin = info{set: bits.New(c.Prog.H.NumClasses())} // bottom
	f := newAFrame(src.NumSlots, true)
	for i, in := range c.formalInfos(v) {
		f.infos[i] = in
	}
	a.frames = []*aframe{f}

	body := ir.Clone(src.Code)
	a.poisonClosureWrites(body)
	a.retTracked = true
	body, bodyInfo := a.optimize(body)
	body = a.eliminateDead(body)
	ret := join(a.retJoin, bodyInfo)
	ret.closure = nil
	c.mu.Lock()
	if v.Body == nil { // another goroutine may have raced us; first wins
		v.NumSlots = f.size
		v.Body = body
	}
	if c.Opts.ReturnTypeAnalysis {
		c.retInfo[v] = ret
		delete(c.retInProgress, v)
	}
	c.mu.Unlock()
	return nil
}

// returnInfoOf computes (compiling the callee if necessary) the class
// info of a version's return value. Recursive cycles degrade to Top.
func (c *Compiled) returnInfoOf(v *ir.Version) info {
	if !c.Opts.ReturnTypeAnalysis {
		return topInfo()
	}
	c.mu.Lock()
	if c.retInProgress[v] {
		c.mu.Unlock()
		return topInfo()
	}
	if ri, ok := c.retInfo[v]; ok {
		c.mu.Unlock()
		return ri
	}
	c.mu.Unlock()
	if err := c.EnsureBody(v); err != nil {
		return topInfo()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ri, ok := c.retInfo[v]; ok {
		return ri
	}
	return topInfo()
}

// Body returns the compiled body of a version, compiling lazily.
func (c *Compiled) Body(v *ir.Version) (ir.Node, error) {
	if v.Body == nil {
		if err := c.EnsureBody(v); err != nil {
			return nil, err
		}
	}
	return v.Body, nil
}

// optimizeTopLevel compiles a global or field initializer.
func (c *Compiled) optimizeTopLevel(n ir.Node) (ir.Node, error) {
	a := &analyzer{c: c, h: c.Prog.H}
	body := ir.Clone(n)
	out, _ := a.optimize(body)
	return out, nil
}

// InstantiatedClasses collects every class the program can create: New
// nodes anywhere in source bodies, field initializers or global
// initializers, plus the builtin classes (whose values primitives and
// literals create). This is the instantiation (RTA-style) analysis the
// InstantiationAnalysis option compiles against; internal/check reuses
// it to sharpen its diagnostic class sets the same way.
func InstantiatedClasses(p *ir.Program) *bits.Set {
	h := p.H
	set := bits.New(h.NumClasses())
	for _, n := range []string{hier.AnyName, hier.IntName, hier.BoolName,
		hier.StringName, hier.NilName, hier.ArrayName, hier.ClosureName} {
		set.Add(h.Builtin(n).ID)
	}
	collect := func(body ir.Node) {
		ir.Walk(body, func(n ir.Node) bool {
			if nn, ok := n.(*ir.New); ok {
				set.Add(nn.Class.ID)
			}
			return true
		})
	}
	for _, b := range p.Bodies {
		collect(b.Code)
	}
	for _, g := range p.Globals {
		collect(g.Init)
	}
	for _, inits := range p.FieldInits {
		for _, init := range inits {
			if init != nil {
				collect(init)
			}
		}
	}
	return set
}

// computeInstantiated caches the instantiation analysis for this
// compilation.
func (c *Compiled) computeInstantiated() {
	c.instantiated = InstantiatedClasses(c.Prog)
}

// liveOnly intersects an analysis class set with the instantiated set
// when instantiation analysis is enabled.
func (c *Compiled) liveOnly(s *bits.Set) *bits.Set {
	if c.instantiated == nil {
		return s
	}
	return bits.Intersect(s, c.instantiated)
}

// computeGlobalInfos derives constant class information for globals
// that are never assigned after initialization — the paper's Base
// configuration already includes constant propagation, so every
// configuration gets this. Reading a global before its initializer has
// run is a runtime error, which makes the derivation sound.
func (c *Compiled) computeGlobalInfos() {
	n := len(c.Prog.Globals)
	c.globalInfos = make([]info, n)
	for i := range c.globalInfos {
		c.globalInfos[i] = topInfo()
	}
	for i, g := range c.Prog.Globals {
		if c.Prog.GlobalAssigned[i] {
			continue
		}
		c.globalInfos[i] = c.initInfo(g.Init, i)
	}
}

// initInfo computes the class info of a global initializer expression
// structurally; only earlier globals' infos may be consulted.
func (c *Compiled) initInfo(nd ir.Node, before int) info {
	h := c.Prog.H
	switch nd := nd.(type) {
	case *ir.Const:
		switch nd.Kind {
		case ir.KInt:
			return exactInfo(h, h.Builtin(hier.IntName))
		case ir.KStr:
			return exactInfo(h, h.Builtin(hier.StringName))
		case ir.KBool:
			return exactInfo(h, h.Builtin(hier.BoolName))
		default:
			return exactInfo(h, h.Builtin(hier.NilName))
		}
	case *ir.New:
		return exactInfo(h, nd.Class)
	case *ir.MakeClosure:
		return exactInfo(h, h.Builtin(hier.ClosureName))
	case *ir.Global:
		if nd.Slot < before && !c.Prog.GlobalAssigned[nd.Slot] {
			return c.initInfo(c.Prog.Globals[nd.Slot].Init, nd.Slot)
		}
		return topInfo()
	default:
		return topInfo()
	}
}

// formalInfos computes the analysis information for the formals of a
// version. Base sees nothing; Cust/Cust-MM see exact singleton classes
// at customized positions; CHA/Selective see the version's class sets
// (class hierarchy analysis).
func (c *Compiled) formalInfos(v *ir.Version) []info {
	out := make([]info, len(v.Tuple))
	for i, s := range v.Tuple {
		switch c.Opts.Config {
		case Base:
			out[i] = topInfo()
		case Cust, CustMM:
			if s.Len() == 1 {
				out[i] = setInfo(s.Clone())
			} else {
				out[i] = topInfo()
			}
		case CHA, Selective:
			out[i] = setInfo(c.liveOnly(s))
		}
	}
	return out
}

func (a *analyzer) curFrame() *aframe { return a.frames[len(a.frames)-1] }

func (a *analyzer) frameAt(depth int) *aframe {
	idx := len(a.frames) - 1 - depth
	if idx < 0 || idx >= len(a.frames) {
		return nil
	}
	return a.frames[idx]
}

// newSlot allocates a fresh slot in the current frame (for inlining).
func (a *analyzer) newSlot() int {
	f := a.curFrame()
	slot := f.size
	f.size++
	f.set(slot, topInfo())
	return slot
}

// poisonClosureWrites marks, in every frame, the slots that closures in
// the tree can write: such slots must be treated as Top everywhere,
// because a closure may run at any later point.
func (a *analyzer) poisonClosureWrites(n ir.Node) {
	if len(a.frames) == 0 {
		return
	}
	var walk func(n ir.Node, nesting int)
	walk = func(n ir.Node, nesting int) {
		ir.Walk(n, func(ch ir.Node) bool {
			switch ch := ch.(type) {
			case *ir.MakeClosure:
				walk(ch.Fn.Body, nesting+1)
				return false
			case *ir.SetLocal:
				if nesting > 0 && ch.Depth >= nesting {
					// Writes a frame at or outside the creation context.
					hops := ch.Depth - nesting // 0 = innermost analyzer frame
					if f := a.frameAt(hops); f != nil {
						f.poisoned[ch.Slot] = true
					}
				}
			}
			return true
		})
	}
	walk(n, 0)
}

// degradeAssigned widens every current-frame slot assigned inside the
// node (including inside closures) before analyzing a loop: the slot's
// entry info becomes the join of its pre-loop info with a syntactic,
// state-independent upper bound of each assigned right-hand side
// (quickInfo). Loop counters like "i := i - 1" therefore stay {Int}
// instead of collapsing to Top — which is what lets sends dispatched
// on Int positions still bind inside loops.
func (a *analyzer) degradeAssigned(n ir.Node) {
	f := a.curFrame()
	var walk func(n ir.Node, nesting int)
	walk = func(n ir.Node, nesting int) {
		ir.Walk(n, func(ch ir.Node) bool {
			switch ch := ch.(type) {
			case *ir.MakeClosure:
				walk(ch.Fn.Body, nesting+1)
				return false
			case *ir.SetLocal:
				if ch.Depth == nesting {
					if nesting == 0 {
						f.set(ch.Slot, join(f.get(ch.Slot), a.quickInfo(ch.X)))
					} else {
						f.set(ch.Slot, topInfo())
					}
				}
			}
			return true
		})
	}
	walk(n, 0)
}

// quickInfo bounds the class info of an expression without consulting
// any analysis state (so the bound holds at every loop iteration).
func (a *analyzer) quickInfo(n ir.Node) info {
	h := a.h
	switch n := n.(type) {
	case *ir.Const:
		switch n.Kind {
		case ir.KInt:
			return exactInfo(h, h.Builtin(hier.IntName))
		case ir.KStr:
			return exactInfo(h, h.Builtin(hier.StringName))
		case ir.KBool:
			return exactInfo(h, h.Builtin(hier.BoolName))
		default:
			return exactInfo(h, h.Builtin(hier.NilName))
		}
	case *ir.New:
		return exactInfo(h, n.Class)
	case *ir.MakeClosure:
		return exactInfo(h, h.Builtin(hier.ClosureName))
	case *ir.Bin:
		switch n.Op {
		case ir.OpLT, ir.OpLE, ir.OpGT, ir.OpGE, ir.OpEQ, ir.OpNE:
			return exactInfo(h, h.Builtin(hier.BoolName))
		case ir.OpAdd:
			// + is Int+Int or String+String: the result can only be Int
			// if both operands can be Int, only String if both can be
			// String ("i := i + 1" therefore stays {Int}).
			li, ri := a.quickInfo(n.L), a.quickInfo(n.R)
			intC := h.Builtin(hier.IntName)
			strC := h.Builtin(hier.StringName)
			canBe := func(in info, c *hier.Class) bool { return in.top || in.set.Has(c.ID) }
			s := bits.New(h.NumClasses())
			if canBe(li, intC) && canBe(ri, intC) {
				s.Add(intC.ID)
			}
			if canBe(li, strC) && canBe(ri, strC) {
				s.Add(strC.ID)
			}
			if s.Empty() {
				s.Add(intC.ID) // mismatched operands error at runtime
			}
			return setInfo(s)
		default:
			return exactInfo(h, h.Builtin(hier.IntName))
		}
	case *ir.Un:
		if n.Op == ir.OpNot {
			return exactInfo(h, h.Builtin(hier.BoolName))
		}
		return exactInfo(h, h.Builtin(hier.IntName))
	case *ir.And, *ir.Or:
		return exactInfo(h, h.Builtin(hier.BoolName))
	case *ir.PrimCall:
		return a.primInfo(n.Prim)
	case *ir.Seq:
		if len(n.Nodes) == 0 {
			return exactInfo(h, h.Builtin(hier.NilName))
		}
		return a.quickInfo(n.Nodes[len(n.Nodes)-1])
	case *ir.SetLocal:
		return a.quickInfo(n.X)
	case *ir.If:
		ti := a.quickInfo(n.Then)
		if n.Else == nil {
			return join(ti, exactInfo(h, h.Builtin(hier.NilName)))
		}
		return join(ti, a.quickInfo(n.Else))
	default:
		return topInfo()
	}
}

// optimize rewrites a node in place (or replaces it) and returns the
// class information of its value.
func (a *analyzer) optimize(n ir.Node) (ir.Node, info) {
	h := a.h
	switch n := n.(type) {
	case *ir.Const:
		switch n.Kind {
		case ir.KInt:
			return n, exactInfo(h, h.Builtin(hier.IntName))
		case ir.KStr:
			return n, exactInfo(h, h.Builtin(hier.StringName))
		case ir.KBool:
			return n, exactInfo(h, h.Builtin(hier.BoolName))
		default:
			return n, exactInfo(h, h.Builtin(hier.NilName))
		}

	case *ir.Local:
		if f := a.frameAt(n.Depth); f != nil {
			in := f.get(n.Slot)
			if n.Depth > 0 {
				// Cross-frame closure propagation is unsound (the outer
				// slot may change between creation and call).
				in.closure = nil
			}
			return n, in
		}
		return n, topInfo()

	case *ir.SetLocal:
		x, xi := a.optimize(n.X)
		n.X = x
		if f := a.frameAt(n.Depth); f != nil {
			if n.Depth == 0 {
				f.set(n.Slot, xi)
			} else {
				// Writing an outer slot: its analysis there is already
				// degraded (poisoned) if reachable via a closure.
				f.set(n.Slot, topInfo())
			}
		}
		return n, xi

	case *ir.Global:
		return n, a.c.globalInfos[n.Slot]

	case *ir.SetGlobal:
		x, xi := a.optimize(n.X)
		n.X = x
		return n, xi

	case *ir.GetField:
		obj, oi := a.optimize(n.Obj)
		n.Obj = obj
		a.resolveFieldSlot(&n.Slot, n.Name, oi)
		return n, a.fieldInfo(n.Name, oi)

	case *ir.SetField:
		obj, oi := a.optimize(n.Obj)
		n.Obj = obj
		x, xi := a.optimize(n.X)
		n.X = x
		a.resolveFieldSlot(&n.Slot, n.Name, oi)
		xi.closure = nil
		return n, xi

	case *ir.Seq:
		var last info
		for i, ch := range n.Nodes {
			n.Nodes[i], last = a.optimize(ch)
		}
		if len(n.Nodes) == 0 {
			return n, exactInfo(h, h.Builtin(hier.NilName))
		}
		if len(n.Nodes) == 1 {
			return n.Nodes[0], last
		}
		return n, last

	case *ir.If:
		cond, _ := a.optimize(n.Cond)
		n.Cond = cond
		// Constant-fold a known condition (dead-code elimination; this
		// is also what removes never-taken branches after inlining).
		if cb, ok := cond.(*ir.Const); ok && cb.Kind == ir.KBool {
			branch := n.Then
			if !cb.Bool {
				branch = n.Else
			}
			if branch == nil {
				return &ir.Const{Kind: ir.KNil}, exactInfo(h, h.Builtin(hier.NilName))
			}
			return a.optimize(branch)
		}
		f := a.curFrame()
		pre := f.snapshot()
		then, ti := a.optimize(n.Then)
		n.Then = then
		post := f.snapshot()
		f.restore(pre)
		var ei info = exactInfo(h, h.Builtin(hier.NilName))
		if n.Else != nil {
			var els ir.Node
			els, ei = a.optimize(n.Else)
			n.Else = els
		}
		// Join the branch states.
		for i := range f.infos {
			other := topInfo()
			if i < len(post) {
				other = post[i]
			}
			f.infos[i] = join(f.infos[i], other)
		}
		return n, join(ti, ei)

	case *ir.While:
		a.degradeAssigned(n)
		cond, _ := a.optimize(n.Cond)
		n.Cond = cond
		body, _ := a.optimize(n.Body)
		n.Body = body
		return n, exactInfo(h, h.Builtin(hier.NilName))

	case *ir.Return:
		var xi info
		if n.X != nil {
			var x ir.Node
			x, xi = a.optimize(n.X)
			n.X = x
		} else {
			xi = exactInfo(a.h, a.h.Builtin(hier.NilName))
		}
		if a.retTracked {
			a.retJoin = join(a.retJoin, xi)
		}
		// Control never continues past a return: its "value" is bottom,
		// which is the identity of join (keeps enclosing joins precise).
		return n, info{set: bits.New(a.h.NumClasses())}

	case *ir.New:
		for i, arg := range n.Args {
			n.Args[i], _ = a.optimize(arg)
		}
		return n, exactInfo(h, n.Class)

	case *ir.MakeClosure:
		a.optimizeClosureBody(n.Fn)
		in := exactInfo(h, h.Builtin(hier.ClosureName))
		in.closure = n
		return n, in

	case *ir.CallClosure:
		return a.optimizeCallClosure(n)

	case *ir.Send:
		return a.optimizeSend(n)

	case *ir.StaticCall:
		for i, arg := range n.Args {
			n.Args[i], _ = a.optimize(arg)
		}
		return n, topInfo()

	case *ir.VersionSelect:
		for i, arg := range n.Args {
			n.Args[i], _ = a.optimize(arg)
		}
		return n, topInfo()

	case *ir.Bin:
		return a.optimizeBin(n)

	case *ir.Un:
		x, _ := a.optimize(n.X)
		n.X = x
		if c, ok := x.(*ir.Const); ok {
			switch {
			case n.Op == ir.OpNot && c.Kind == ir.KBool:
				return &ir.Const{Kind: ir.KBool, Bool: !c.Bool}, exactInfo(h, h.Builtin(hier.BoolName))
			case n.Op == ir.OpNeg && c.Kind == ir.KInt:
				return &ir.Const{Kind: ir.KInt, Int: -c.Int}, exactInfo(h, h.Builtin(hier.IntName))
			}
		}
		if n.Op == ir.OpNot {
			return n, exactInfo(h, h.Builtin(hier.BoolName))
		}
		return n, exactInfo(h, h.Builtin(hier.IntName))

	case *ir.PrimCall:
		for i, arg := range n.Args {
			n.Args[i], _ = a.optimize(arg)
		}
		return n, a.primInfo(n.Prim)

	case *ir.And:
		l, _ := a.optimize(n.L)
		n.L = l
		f := a.curFrame()
		var pre []info
		if f != nil {
			pre = f.snapshot()
		}
		r, _ := a.optimize(n.R)
		n.R = r
		if f != nil {
			// R may not execute; join with the pre-state. Slots that R's
			// inlining allocated (beyond len(pre)) are R-local temps and
			// keep their info.
			for i := range f.infos {
				if i < len(pre) {
					f.infos[i] = join(f.infos[i], pre[i])
				}
			}
		}
		if lc, ok := l.(*ir.Const); ok && lc.Kind == ir.KBool {
			if !lc.Bool {
				return &ir.Const{Kind: ir.KBool, Bool: false}, exactInfo(h, h.Builtin(hier.BoolName))
			}
			return r, exactInfo(h, h.Builtin(hier.BoolName))
		}
		return n, exactInfo(h, h.Builtin(hier.BoolName))

	case *ir.Or:
		l, _ := a.optimize(n.L)
		n.L = l
		f := a.curFrame()
		var pre []info
		if f != nil {
			pre = f.snapshot()
		}
		r, _ := a.optimize(n.R)
		n.R = r
		if f != nil {
			for i := range f.infos {
				if i < len(pre) {
					f.infos[i] = join(f.infos[i], pre[i])
				}
			}
		}
		if lc, ok := l.(*ir.Const); ok && lc.Kind == ir.KBool {
			if lc.Bool {
				return &ir.Const{Kind: ir.KBool, Bool: true}, exactInfo(h, h.Builtin(hier.BoolName))
			}
			return r, exactInfo(h, h.Builtin(hier.BoolName))
		}
		return n, exactInfo(h, h.Builtin(hier.BoolName))
	}
	panic(fmt.Sprintf("opt: unknown node %T", n))
}

func (a *analyzer) primInfo(p ir.Prim) info {
	h := a.h
	switch p {
	case ir.PrimStr, ir.PrimSubstr, ir.PrimCharAt, ir.PrimChr, ir.PrimClassName:
		return exactInfo(h, h.Builtin(hier.StringName))
	case ir.PrimNewArray:
		return exactInfo(h, h.Builtin(hier.ArrayName))
	case ir.PrimALen, ir.PrimStrLen, ir.PrimOrd:
		return exactInfo(h, h.Builtin(hier.IntName))
	case ir.PrimSame:
		return exactInfo(h, h.Builtin(hier.BoolName))
	case ir.PrimPrint, ir.PrimPrintln, ir.PrimAbort:
		return exactInfo(h, h.Builtin(hier.NilName))
	default: // aget, aput: element type unknown
		return topInfo()
	}
}

func (a *analyzer) optimizeBin(n *ir.Bin) (ir.Node, info) {
	h := a.h
	l, li := a.optimize(n.L)
	n.L = l
	r, ri := a.optimize(n.R)
	n.R = r

	// Constant folding for integer operands.
	if lc, lok := l.(*ir.Const); lok {
		if rc, rok := r.(*ir.Const); rok && lc.Kind == ir.KInt && rc.Kind == ir.KInt {
			if folded, ok := foldIntBin(n.Op, lc.Int, rc.Int); ok {
				return folded, a.constInfo(folded)
			}
		}
	}

	switch n.Op {
	case ir.OpLT, ir.OpLE, ir.OpGT, ir.OpGE, ir.OpEQ, ir.OpNE:
		return n, exactInfo(h, h.Builtin(hier.BoolName))
	case ir.OpAdd:
		// + is Int+Int or String+String.
		intCls, strCls := h.Builtin(hier.IntName), h.Builtin(hier.StringName)
		onlyInt := !li.top && li.set.SubsetOf(intCls.Cone()) && !ri.top && ri.set.SubsetOf(intCls.Cone())
		onlyStr := !li.top && li.set.SubsetOf(strCls.Cone()) && !ri.top && ri.set.SubsetOf(strCls.Cone())
		switch {
		case onlyInt:
			return n, exactInfo(h, intCls)
		case onlyStr:
			return n, exactInfo(h, strCls)
		default:
			s := bits.New(h.NumClasses())
			s.Add(intCls.ID)
			s.Add(strCls.ID)
			return n, setInfo(s)
		}
	default:
		return n, exactInfo(h, h.Builtin(hier.IntName))
	}
}

func (a *analyzer) constInfo(n ir.Node) info {
	c := n.(*ir.Const)
	switch c.Kind {
	case ir.KInt:
		return exactInfo(a.h, a.h.Builtin(hier.IntName))
	case ir.KBool:
		return exactInfo(a.h, a.h.Builtin(hier.BoolName))
	case ir.KStr:
		return exactInfo(a.h, a.h.Builtin(hier.StringName))
	default:
		return exactInfo(a.h, a.h.Builtin(hier.NilName))
	}
}

func foldIntBin(op ir.BinOp, l, r int64) (ir.Node, bool) {
	b := func(v bool) (ir.Node, bool) { return &ir.Const{Kind: ir.KBool, Bool: v}, true }
	i := func(v int64) (ir.Node, bool) { return &ir.Const{Kind: ir.KInt, Int: v}, true }
	switch op {
	case ir.OpAdd:
		return i(l + r)
	case ir.OpSub:
		return i(l - r)
	case ir.OpMul:
		return i(l * r)
	case ir.OpDiv:
		if r == 0 {
			return nil, false // preserve the runtime error
		}
		return i(l / r)
	case ir.OpMod:
		if r == 0 {
			return nil, false
		}
		return i(l % r)
	case ir.OpLT:
		return b(l < r)
	case ir.OpLE:
		return b(l <= r)
	case ir.OpGT:
		return b(l > r)
	case ir.OpGE:
		return b(l >= r)
	case ir.OpEQ:
		return b(l == r)
	case ir.OpNE:
		return b(l != r)
	}
	return nil, false
}

// fieldInfo computes the class information of a field read from the
// declared field types (enforced at every store), available only to
// the configurations that perform class hierarchy analysis. With an
// unknown receiver it unions over every class declaring the field,
// which is still sound because stores are checked per declaring class.
func (a *analyzer) fieldInfo(name string, oi info) info {
	if a.c.Opts.Config != CHA && a.c.Opts.Config != Selective {
		return topInfo()
	}
	out := bits.New(a.h.NumClasses())
	consider := func(c *hier.Class) bool {
		idx := c.FieldIndex(name)
		if idx < 0 {
			return true // read would fail at runtime: contributes no value
		}
		dt := c.Fields[idx].DeclType
		if dt == nil {
			return false // untyped field: anything
		}
		out.AddAll(dt.Cone())
		return true
	}
	if oi.top {
		for _, c := range a.h.Classes() {
			if !consider(c) {
				return topInfo()
			}
		}
		return setInfo(a.c.liveOnly(out))
	}
	ok := true
	oi.set.ForEach(func(id int) bool {
		ok = consider(a.h.Classes()[id])
		return ok
	})
	if !ok {
		return topInfo()
	}
	return setInfo(a.c.liveOnly(out))
}

// resolveFieldSlot fills *slot when every possible class of the object
// agrees on the field's index (customization's classic win).
func (a *analyzer) resolveFieldSlot(slot *int, name string, oi info) {
	if oi.top || oi.set.Empty() {
		return
	}
	resolved := -1
	ok := true
	oi.set.ForEach(func(id int) bool {
		idx := a.h.Classes()[id].FieldIndex(name)
		if idx < 0 || (resolved >= 0 && idx != resolved) {
			ok = false
			return false
		}
		resolved = idx
		return true
	})
	if ok && resolved >= 0 {
		*slot = resolved
	}
}

// optimizeClosureBody analyzes a (non-inlined) closure body. Outer
// frames are visible only in a guarded form: every slot is Top except
// the enclosing method's never-assigned formals, whose class sets are
// stable for the whole activation.
func (a *analyzer) optimizeClosureBody(code *ir.ClosureCode) {
	saved := a.frames
	guarded := make([]*aframe, len(saved))
	for i, f := range saved {
		g := newAFrame(f.size, f.isMethod)
		if i == 0 && f.isMethod && a.version != nil {
			src := a.c.Prog.Bodies[a.version.Method]
			for slot := 0; slot < len(src.AssignedFormals) && slot < len(f.infos); slot++ {
				if !src.AssignedFormals[slot] && !f.poisoned[slot] {
					g.infos[slot] = f.infos[slot]
					g.infos[slot].closure = nil
				}
			}
		}
		guarded[i] = g
	}
	cf := newAFrame(code.NumSlots, false)
	a.frames = append(guarded, cf)
	a.poisonClosureWrites(code.Body)
	body, _ := a.optimize(code.Body)
	code.Body = body
	code.NumSlots = cf.size
	a.frames = saved
}

// optimizeCallClosure inlines closure calls whose callee is a known
// closure literal created in the current frame (directly or via copy
// propagation through an unassigned local) — the paper's closure
// elimination: "the closure argument to do must be created at run-time
// and invoked as a separate procedure for each iteration" unless
// inlining removes it.
func (a *analyzer) optimizeCallClosure(n *ir.CallClosure) (ir.Node, info) {
	fn, fi := a.optimize(n.Fn)
	n.Fn = fn
	mc := fi.closure
	if mc != nil &&
		len(n.Args) == mc.Fn.NumParams &&
		a.depth < a.c.Opts.maxInlineDepth() &&
		!a.c.Opts.DisableInlining &&
		ir.Size(mc.Fn.Body) <= 8*a.c.Opts.inlineThreshold() {
		return a.inlineClosure(mc.Fn, n.Args)
	}
	for i, arg := range n.Args {
		n.Args[i], _ = a.optimize(arg)
	}
	return n, topInfo()
}

// optimizeSend performs static binding, compile-time version selection,
// and inlining for one message send.
func (a *analyzer) optimizeSend(n *ir.Send) (ir.Node, info) {
	infos := make([]info, len(n.Args))
	for i, arg := range n.Args {
		n.Args[i], infos[i] = a.optimize(arg)
	}
	g := n.Site.GF

	target, ok := a.uniqueTarget(g, infos)
	if !ok {
		return n, topInfo()
	}
	a.c.staticBound.Add(1)

	v, exact := a.c.selectVersionStatic(target, infos)
	if !exact {
		a.c.versionSelects.Add(1)
		return &ir.VersionSelect{Method: target, Site: n.Site, Args: n.Args}, topInfo()
	}

	if a.canInline(target) {
		a.c.inlinedCalls.Add(1)
		return a.inlineMethod(target, n.Args, infos)
	}
	return &ir.StaticCall{Target: v, Site: n.Site, Args: n.Args}, a.c.returnInfoOf(v)
}

// bindProductLimit bounds the product enumeration used to prove a
// unique dispatch target at a call site.
const bindProductLimit = 1024

// uniqueTarget reports the single method every possible argument class
// tuple dispatches to, if one exists and no tuple errors.
func (a *analyzer) uniqueTarget(g *hier.GF, infos []info) (*hier.Method, bool) {
	h := a.h
	dpos := g.DispatchedPositions()
	if len(dpos) == 0 {
		if len(g.Methods) == 1 {
			return g.Methods[0], true
		}
		return nil, false
	}
	size := 1
	for _, p := range dpos {
		if infos[p].top {
			return nil, false
		}
		n := infos[p].set.Len()
		if n == 0 {
			return nil, false // dead code; leave the send alone
		}
		size *= n
		if size > bindProductLimit {
			return nil, false
		}
	}

	classes := make([]*hier.Class, g.Arity)
	for i := range classes {
		classes[i] = h.Any()
	}
	elems := make([][]int, len(dpos))
	for i, p := range dpos {
		elems[i] = infos[p].set.Elems()
	}
	idx := make([]int, len(dpos))
	var target *hier.Method
	for {
		for i, p := range dpos {
			classes[p] = h.Classes()[elems[i][idx[i]]]
		}
		m, err := h.Lookup(g, classes...)
		if err != nil || (target != nil && m != target) {
			return nil, false
		}
		target = m
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(elems[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return target, target != nil
}

// selectVersionStatic decides, at compile time, which version of m a
// statically-bound call invokes. It returns (version, true) when one
// version covers every possible argument tuple, and (nil, false) when
// the choice must be deferred to run time (VersionSelect).
func (c *Compiled) selectVersionStatic(m *hier.Method, infos []info) (*ir.Version, bool) {
	mv := c.versions[m]
	switch c.Opts.Config {
	case Base, CHA:
		return mv.list[0], true

	case Cust:
		p := receiverPos(m.GF)
		if p < 0 {
			return mv.list[0], true
		}
		if infos[p].top || infos[p].set.Len() != 1 {
			return nil, false
		}
		id := infos[p].set.Min()
		key := string([]byte{byte(id), byte(id >> 8)})
		if v, ok := mv.byKey[key]; ok {
			return v, true
		}
		return c.General(m), true

	case CustMM:
		positions := m.GF.DispatchedPositions()
		classes := make([]*hier.Class, len(infos))
		for i := range classes {
			classes[i] = c.Prog.H.Any()
		}
		for _, p := range positions {
			if infos[p].top || infos[p].set.Len() != 1 {
				return nil, false
			}
			classes[p] = c.Prog.H.Classes()[infos[p].set.Min()]
		}
		return c.SelectVersion(m, classes), true

	case Selective:
		// U[i] = possible classes at position i, bounded by the cone of
		// the specializer (every dispatching tuple lies inside it).
		gen := c.Prog.H.GeneralTuple(m)
		u := make(hier.Tuple, len(infos))
		for i := range infos {
			if infos[i].top {
				u[i] = gen[i]
			} else {
				u[i] = bits.Intersect(infos[i].set, gen[i])
			}
		}
		var candidates []*ir.Version
		for _, v := range mv.list {
			if v.Tuple.Intersects(u) {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			return c.General(m), true
		}
		best := candidates[0]
		for _, v := range candidates[1:] {
			if v.Tuple.SubsetOf(best.Tuple) {
				best = v
			}
		}
		for _, v := range candidates {
			if !best.Tuple.SubsetOf(v.Tuple) {
				return nil, false // incomparable candidates: runtime choice varies
			}
		}
		if !u.SubsetOf(best.Tuple) {
			return nil, false
		}
		return best, true
	}
	panic("opt: unknown config")
}

// canInline reports whether a statically-bound call to m may be inlined
// here. Bodies containing 'return' are never inlined: an inlined return
// would incorrectly exit the caller (closures passed in by the caller
// keep their non-local returns, which is exactly the paper's Set
// example).
func (a *analyzer) canInline(m *hier.Method) bool {
	if a.c.Opts.DisableInlining || a.depth >= a.c.Opts.maxInlineDepth() {
		return false
	}
	if len(a.frames) == 0 {
		// Global/field initializers have no frame to host inlined slots
		// (and run exactly once, so inlining buys nothing).
		return false
	}
	src := a.c.Prog.Bodies[m]
	if src == nil || ir.Size(src.Code) > a.c.Opts.inlineThreshold() {
		return false
	}
	for _, active := range a.inlineStack {
		if active == m {
			return false
		}
	}
	if a.version != nil && a.version.Method == m {
		return false
	}
	hasReturn := false
	ir.Walk(src.Code, func(n ir.Node) bool {
		if _, ok := n.(*ir.Return); ok {
			hasReturn = true
			return false
		}
		return true
	})
	return !hasReturn
}

// inlineMethod splices the source body of m into the current frame,
// binding the (already optimized) arguments to fresh slots, and then
// optimizes the spliced copy with the precise argument information.
func (a *analyzer) inlineMethod(m *hier.Method, args []ir.Node, infos []info) (ir.Node, info) {
	src := a.c.Prog.Bodies[m]
	slotMap := make([]int, src.NumSlots)
	for i := range slotMap {
		slotMap[i] = a.newSlot()
	}
	body := remapInlined(ir.Clone(src.Code), slotMap, false)

	f := a.curFrame()
	nodes := make([]ir.Node, 0, len(args)+1)
	for i, arg := range args {
		nodes = append(nodes, &ir.SetLocal{Depth: 0, Slot: slotMap[i], Name: "inl$" + m.GF.Name, X: arg})
		in := infos[i]
		in.closure = infos[i].closure // propagate closure literals into the inlined body
		f.set(slotMap[i], in)
	}

	a.poisonClosureWrites(body)
	a.inlineStack = append(a.inlineStack, m)
	a.depth++
	body, bi := a.optimize(body)
	a.depth--
	a.inlineStack = a.inlineStack[:len(a.inlineStack)-1]

	nodes = append(nodes, body)
	if len(nodes) == 1 {
		return nodes[0], bi
	}
	return &ir.Seq{Nodes: nodes}, bi
}

// inlineClosure splices a closure body into the current frame. Returns
// inside the body are legal: they belong to the lexically enclosing
// method, which is exactly the method being compiled.
func (a *analyzer) inlineClosure(code *ir.ClosureCode, args []ir.Node) (ir.Node, info) {
	slotMap := make([]int, code.NumSlots)
	for i := range slotMap {
		slotMap[i] = a.newSlot()
	}
	body := remapInlined(ir.Clone(code.Body), slotMap, true)

	f := a.curFrame()
	nodes := make([]ir.Node, 0, len(args)+1)
	for i, arg := range args {
		optArg, ai := a.optimize(arg)
		nodes = append(nodes, &ir.SetLocal{Depth: 0, Slot: slotMap[i], Name: "clo$arg", X: optArg})
		f.set(slotMap[i], ai)
	}

	a.poisonClosureWrites(body)
	a.depth++
	body, bi := a.optimize(body)
	a.depth--

	nodes = append(nodes, body)
	if len(nodes) == 1 {
		return nodes[0], bi
	}
	return &ir.Seq{Nodes: nodes}, bi
}

// remapInlined rewrites frame references of an inlined body: slots of
// the inlinee's own frame map through slotMap into the host frame;
// for closures (dropOneFrame) references to frames outside the closure
// lose one hop because the closure frame disappears.
func remapInlined(n ir.Node, slotMap []int, dropOneFrame bool) ir.Node {
	var rewrite func(n ir.Node, nesting int)
	rewrite = func(n ir.Node, nesting int) {
		ir.Walk(n, func(ch ir.Node) bool {
			switch ch := ch.(type) {
			case *ir.MakeClosure:
				rewrite(ch.Fn.Body, nesting+1)
				return false
			case *ir.Local:
				if ch.Depth == nesting {
					ch.Slot = slotMap[ch.Slot]
				} else if ch.Depth > nesting {
					if !dropOneFrame {
						panic("opt: method body references an outer frame")
					}
					ch.Depth--
				}
			case *ir.SetLocal:
				if ch.Depth == nesting {
					ch.Slot = slotMap[ch.Slot]
				} else if ch.Depth > nesting {
					if !dropOneFrame {
						panic("opt: method body references an outer frame")
					}
					ch.Depth--
				}
			}
			return true
		})
	}
	rewrite(n, 0)
	return n
}

// eliminateDead removes side-effect-free statements from non-final Seq
// positions — in particular closure literals whose every call was
// inlined ("dead code elimination to optimize away unneeded closure
// creations", Table 1).
func (a *analyzer) eliminateDead(body ir.Node) ir.Node {
	readSlots := map[int]bool{}
	var collect func(n ir.Node, nesting int)
	collect = func(n ir.Node, nesting int) {
		ir.Walk(n, func(ch ir.Node) bool {
			switch ch := ch.(type) {
			case *ir.MakeClosure:
				collect(ch.Fn.Body, nesting+1)
				return false
			case *ir.Local:
				if ch.Depth == nesting {
					readSlots[ch.Slot] = true
				}
			}
			return true
		})
	}
	collect(body, 0)

	var sweep func(n ir.Node, nesting int) ir.Node
	sweep = func(n ir.Node, nesting int) ir.Node {
		switch n := n.(type) {
		case *ir.Seq:
			var out []ir.Node
			for i, ch := range n.Nodes {
				ch = sweep(ch, nesting)
				last := i == len(n.Nodes)-1
				if !last {
					if sl, ok := ch.(*ir.SetLocal); ok && sl.Depth == nesting && nesting == 0 && !readSlots[sl.Slot] && pure(sl.X) {
						continue
					}
					if pure(ch) {
						continue
					}
				}
				out = append(out, ch)
			}
			if len(out) == 1 {
				return out[0]
			}
			n.Nodes = out
			return n
		case *ir.If:
			n.Then = sweep(n.Then, nesting)
			if n.Else != nil {
				n.Else = sweep(n.Else, nesting)
			}
			return n
		case *ir.While:
			n.Body = sweep(n.Body, nesting)
			return n
		case *ir.MakeClosure:
			n.Fn.Body = sweep(n.Fn.Body, nesting+1)
			return n
		default:
			return n
		}
	}
	return sweep(body, 0)
}

// pure reports that evaluating n has no side effects and cannot fail.
func pure(n ir.Node) bool {
	switch n := n.(type) {
	case *ir.Const, *ir.Local, *ir.Global:
		return true
	case *ir.MakeClosure:
		return true
	case *ir.Un:
		return pure(n.X)
	case *ir.Bin:
		// Division and modulo can trap; +, comparisons etc. can raise
		// type errors but only on values a well-typed program never
		// produces — we keep them droppable, as real compilers do.
		if n.Op == ir.OpDiv || n.Op == ir.OpMod {
			return false
		}
		return pure(n.L) && pure(n.R)
	case *ir.And:
		return pure(n.L) && pure(n.R)
	case *ir.Or:
		return pure(n.L) && pure(n.R)
	default:
		return false
	}
}
