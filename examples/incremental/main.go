// Incremental demonstrates §3.7.1 of the paper: the compiler maintains
// a fine-grained dependency graph so that a change to the class
// hierarchy or the method set selectively invalidates — and an
// incremental compiler recompiles — only the affected compiled code.
//
// The demo compiles the Set example under CHA, then plays three edits
// and shows the recompilation set of each:
//
//  1. editing the body of includes(@HashSet) — invalidates its own
//     versions plus callers that inlined or bound it;
//
//  2. adding a method to the do generic function — invalidates every
//     version whose binding decisions consumed do's method set;
//
//  3. editing an unrelated class — invalidates almost nothing.
//
//     go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"selspec/internal/deps"
	"selspec/internal/driver"
	"selspec/internal/opt"
	"selspec/internal/programs"
)

func main() {
	b := programs.Sets()
	p, err := driver.Load(b.Source)
	if err != nil {
		log.Fatal(err)
	}
	c, err := opt.Compile(p.Prog, opt.Options{Config: opt.CHA})
	if err != nil {
		log.Fatal(err)
	}

	graph := deps.FromCompiled(c)
	fmt.Printf("dependency graph over the compiled Set example: %d nodes, %d edges\n",
		graph.Len(), graph.Edges())

	total := 0
	for _, m := range p.Prog.H.Methods() {
		total += len(c.VersionsOf(m))
	}

	show := func(title string, affected []deps.Node) {
		invalid := graph.InvalidVersions()
		fmt.Printf("\n%s\n", title)
		fmt.Printf("  %d nodes affected; %d of %d compiled versions must be recompiled:\n",
			len(affected), len(invalid), total)
		for _, n := range invalid {
			fmt.Printf("    recompile %s\n", n.Name)
		}
		for _, n := range invalid {
			graph.Revalidate(n)
		}
		// Also revalidate the source nodes so the next scenario starts
		// clean.
		for _, n := range affected {
			graph.Revalidate(n)
		}
	}

	show(`edit the body of includes(@HashSet):`,
		graph.MethodChanged("includes(@HashSet,@Any)", "includes/2"))

	show(`add a method to the do/2 generic function:`,
		graph.Invalidate(deps.GFNode("do/2")))

	show(`change class BitSet's declaration:`,
		graph.Invalidate(deps.ClassNode("BitSet")))
}
