// Sets runs the paper's §2 motivating example — the Set hierarchy with
// overlaps/includes/do factored into an abstract superclass — under all
// five compiler configurations of Table 1 and prints the comparison the
// paper's §2 narrates: customization specializes the receiver (do binds
// inside overlaps) but under-specializes set2; selective specialization
// also specializes the non-receiver argument so includes binds too.
//
//	go run ./examples/sets
package main

import (
	"fmt"
	"log"

	"selspec/internal/driver"
	"selspec/internal/opt"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

func main() {
	b := programs.Sets()
	p, err := driver.Load(b.Source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The paper's Set example (overlaps/includes/do), all configurations:")
	fmt.Printf("\n%-10s %12s %14s %12s %10s %10s\n",
		"config", "dispatches", "vsn-selects", "cycles", "versions", "result")

	var baseDispatch uint64
	for _, cfg := range opt.Configs() {
		res, err := p.RunConfig(driver.ConfigOptions{
			Config:     cfg,
			Train:      b.Train,
			Test:       b.Test,
			SpecParams: specialize.Params{Threshold: 200},
			RunExtra:   func(ro *driver.RunOptions) { ro.CaptureOutput = true },
		})
		if err != nil {
			log.Fatalf("%v: %v", cfg, err)
		}
		if cfg == opt.Base {
			baseDispatch = res.Counters.DynamicDispatches()
		}
		fmt.Printf("%-10s %12d %14d %12d %10d %10s\n",
			cfg, res.Counters.DynamicDispatches(), res.Counters.VersionSelects,
			res.Counters.Cycles, res.Stats.Versions, res.Value)
	}

	fmt.Printf("\n(Base performs %d dynamic dispatches; every other row should shrink that,\n", baseDispatch)
	fmt.Println(" with Selective combining CHA's static binding and argument specialization.)")
}
