// Checkdemo demonstrates the internal/check static analyzer: the same
// ApplicableClasses / class-hierarchy machinery the selective
// specializer optimizes with, re-used to prove dispatch facts before
// running anything. It analyzes the three Mini-Cecil files in this
// directory (also usable directly via `selspec check`) and prints
// their diagnostics.
//
//	go run ./examples/checkdemo
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"

	"selspec/internal/check"
)

//go:embed clean.mc
var cleanSrc string

//go:embed broken.mc
var brokenSrc string

//go:embed arity.mc
var aritySrc string

func main() {
	opts := check.Options{Instantiation: true}
	for _, u := range []struct{ name, src string }{
		{"clean.mc", cleanSrc},
		{"broken.mc", brokenSrc},
		{"arity.mc", aritySrc},
	} {
		ds, err := check.Source(u.name, u.src, opts)
		if err != nil {
			log.Fatalf("%s: %v", u.name, err)
		}
		fmt.Printf("== %s: %d diagnostic(s)\n", u.name, len(ds))
		if err := check.WriteText(os.Stdout, ds); err != nil {
			log.Fatal(err)
		}
	}
}
