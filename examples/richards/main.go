// Richards runs the operating-system task-queue simulation benchmark
// end to end the way the paper's toolchain would be used day to day:
//
//  1. an instrumented Base run on the training input writes a profile
//     to disk (the paper's "persistent internal database of profile
//     information", §3.7.2);
//
//  2. the selective specialization algorithm turns the reloaded profile
//     into specialization directives;
//
//  3. the program is recompiled with the directives and measured on a
//     different input.
//
//     go run ./examples/richards
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/opt"
	"selspec/internal/profdb"
	"selspec/internal/profile"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

func main() {
	b := programs.Richards()
	p, err := driver.Load(b.Source)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Training run with instrumentation, persisted to disk.
	cg, err := p.CollectProfile(driver.RunOptions{Overrides: b.Train})
	if err != nil {
		log.Fatal(err)
	}
	profPath := filepath.Join(os.TempDir(), "richards-profile.json")
	data, err := cg.MarshalJSON()
	if err != nil {
		log.Fatal(err)
	}
	if err := profdb.WriteFileAtomic(profPath, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training profile: %d arcs, total weight %d → %s\n",
		cg.Len(), cg.TotalWeight(), profPath)

	// 2. Reload the profile (as a later compilation session would) and
	// run the algorithm.
	reloaded := profile.NewCallGraph(p.Prog)
	persisted, err := os.ReadFile(profPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := reloaded.UnmarshalInto(persisted); err != nil {
		log.Fatal(err)
	}
	directives := specialize.Run(p.Prog, reloaded, specialize.Params{})
	fmt.Printf("\nspecialization directives (threshold %d):\n%s\n",
		specialize.DefaultThreshold, directives.Describe(p.Prog.H))

	// 3. Compile Base and Selective; measure both on the test input.
	for _, cfg := range []opt.Config{opt.Base, opt.Selective} {
		oo := opt.Options{Config: cfg}
		if cfg == opt.Selective {
			oo.Specializations = directives.Specializations
		}
		c, err := opt.Compile(p.Prog, oo)
		if err != nil {
			log.Fatal(err)
		}
		res, err := driver.Execute(c, driver.RunOptions{
			Overrides:     b.Test,
			Mechanism:     interp.MechPIC,
			CaptureOutput: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %s   dispatches=%d cycles=%d versions=%d wall=%v\n",
			cfg, res.Output[:len(res.Output)-1],
			res.Counters.DynamicDispatches(), res.Counters.Cycles, res.Stats.Versions, res.Wall)
	}
	_ = os.Remove(profPath)
}
