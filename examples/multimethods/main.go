// Multimethods demonstrates the runtime substrate the paper's
// algorithm sits on: multi-method dispatch (specificity over several
// argument positions), the "message ambiguous" error, compressed
// multi-method dispatch tables (§3.5 / Amiel et al.), and the
// incremental-recompilation dependency graph of §3.7.1.
//
//	go run ./examples/multimethods
package main

import (
	"fmt"
	"log"

	"selspec/internal/deps"
	"selspec/internal/dispatch"
	"selspec/internal/driver"
	"selspec/internal/opt"
)

const program = `
-- A classic multi-method example: symbolic dates vs numbers.
class Num
class IntNum isa Num
class Ratio isa Num { field num : Int := 0; field den : Int := 1; }
class Complex isa Num

method addKind(a@Num, b@Num) { "generic+generic"; }
method addKind(a@IntNum, b@IntNum) { "int+int"; }
method addKind(a@IntNum, b@Ratio) { "int+ratio"; }
method addKind(a@Ratio, b@IntNum) { "ratio+int"; }
method addKind(a@Ratio, b@Ratio) { "ratio+ratio"; }
method addKind(a@Complex, b@Num) { "complex+any"; }
method addKind(a@Num, b@Complex) { "any+complex"; }
-- Resolves the (Complex, Complex) ambiguity of the two one-sided
-- methods above.
method addKind(a@Complex, b@Complex) { "complex+complex"; }

method pick(k@Int) {
  if k % 3 == 0 { return new IntNum(); }
  if k % 3 == 1 { return new Ratio(1, 2); }
  new Complex();
}

method main() {
  var i := 0;
  while i < 3 {
    var j := 0;
    while j < 3 {
      println(classname(pick(i)) + " + " + classname(pick(j)) + " -> " + addKind(pick(i), pick(j)));
      j := j + 1;
    }
    i := i + 1;
  }
  0;
}
`

func main() {
	p, err := driver.Load(program)
	if err != nil {
		log.Fatal(err)
	}
	c, err := opt.Compile(p.Prog, opt.Options{Config: opt.Base})
	if err != nil {
		log.Fatal(err)
	}
	res, err := driver.Execute(c, driver.RunOptions{CaptureOutput: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Output)

	// Compressed multi-method dispatch tables (§3.5): classes that every
	// method treats identically share a pole, shrinking the table.
	g, _ := p.Prog.H.GF("addKind", 2)
	table, err := dispatch.NewMMTable(p.Prog.H, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompressed dispatch table for addKind/2: %d entries (uncompressed: %d)\n",
		table.Size(), table.UncompressedSize(p.Prog.H))

	// Incremental recompilation (§3.7.1): what would adding a method to
	// addKind invalidate?
	graph := deps.FromCompiled(c)
	affected := graph.Invalidate(deps.GFNode("addKind/2"))
	fmt.Printf("\ndependency graph: %d nodes, %d edges\n", graph.Len(), graph.Edges())
	fmt.Println("adding a method to addKind/2 invalidates:")
	for _, n := range graph.InvalidVersions() {
		fmt.Printf("  recompile %s\n", n.Name)
	}
	fmt.Printf("(%d nodes affected in total)\n", len(affected))
}
