// Quickstart: compile and run a small Mini-Cecil program under the
// Base configuration and under profile-guided selective specialization,
// and compare the dynamic-dispatch counts — the paper's headline
// metric, on ten lines of code.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"selspec/internal/driver"
	"selspec/internal/opt"
	"selspec/internal/specialize"
)

// A miniature shape hierarchy: area is dispatched, total passes its
// formal straight into the dispatched send — the pass-through pattern
// selective specialization feeds on.
const program = `
class Shape
class Square isa Shape { field side : Int := 0; }
class Rect isa Shape { field w : Int := 0; field h : Int := 0; }

method area(s@Square) { s.side * s.side; }
method area(s@Rect) { s.w * s.h; }

-- sumAreas passes its shape formal to the dispatched area send inside
-- a loop: a specialization target.
method sumAreas(s@Shape, n@Int) {
  var total := 0;
  var i := 0;
  while i < n { total := total + s.area(); i := i + 1; }
  total;
}

method main() {
  var shapes := newarray(2);
  aput(shapes, 0, new Square(3));
  aput(shapes, 1, new Rect(2, 5));
  var total := 0;
  var k := 0;
  while k < 2000 {
    total := total + sumAreas(aget(shapes, k % 2), 10);
    k := k + 1;
  }
  println("grand total area: " + str(total));
  total;
}
`

func main() {
	p, err := driver.Load(program)
	if err != nil {
		log.Fatal(err)
	}

	run := func(cfg opt.Config) *driver.Result {
		res, err := p.RunConfig(driver.ConfigOptions{
			Config:     cfg,
			SpecParams: specialize.Params{Threshold: 1000},
			RunExtra:   func(ro *driver.RunOptions) { ro.CaptureOutput = true },
		})
		if err != nil {
			log.Fatalf("%v: %v", cfg, err)
		}
		return res
	}

	base := run(opt.Base)
	sel := run(opt.Selective)

	fmt.Print(base.Output)
	fmt.Printf("\n%-10s %12s %12s %10s\n", "config", "dispatches", "cycles", "versions")
	for _, r := range []*driver.Result{base, sel} {
		fmt.Printf("%-10s %12d %12d %10d\n",
			r.Config, r.Counters.DynamicDispatches(), r.Counters.Cycles, r.Stats.Versions)
	}
	fmt.Printf("\nselective specialization removed %.0f%% of dynamic dispatches\n",
		100*(1-float64(sel.Counters.DynamicDispatches())/float64(base.Counters.DynamicDispatches())))
}
