package selspec

// bench_test.go regenerates the paper's evaluation (Section 4) as Go
// benchmarks — one benchmark family per table/figure — plus ablations
// of the design choices discussed in Section 3:
//
//	BenchmarkFig5Dispatches      Figure 5 left: dynamic dispatches per config
//	BenchmarkFig5Speed           Figure 5 right: cycle-model execution speed
//	BenchmarkFig6StaticVersions  Figure 6 left: compiled routines (static)
//	BenchmarkFig6InvokedVersions Figure 6 right: invoked routines (dynamic compilation)
//	BenchmarkTable2              per-benchmark Base characterization
//	BenchmarkSetExample          the §2 Set example across configurations
//	BenchmarkAblationThreshold   §3.4: SpecializationThreshold sweep
//	BenchmarkAblationCascade     §3.3: cascading on/off
//	BenchmarkAblationCombination §3.2: tuple combination on/off
//	BenchmarkAblationTupleProfiles §3.2 extension: argument-tuple profiles
//	BenchmarkAblationSpaceBudget §3.4: fixed space budget heuristic
//	BenchmarkAblationInlining    §2: indirect benefit of static binding
//	BenchmarkAblationDispatchMech §3.5: PIC vs global lookup vs tables
//
// Counter metrics (dispatches, cycles, versions) are attached with
// b.ReportMetric; wall time per run is the benchmark's ns/op.

import (
	"testing"

	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/opt"
	"selspec/internal/profile"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

// prepared caches a compiled configuration of a benchmark program so
// the measurement loop only times execution.
type prepared struct {
	prog *driver.Pipeline
	comp *opt.Compiled
	test map[string]int64
}

func prepare(b *testing.B, bench programs.Benchmark, cfg opt.Config, params specialize.Params) *prepared {
	b.Helper()
	p, err := driver.Load(bench.Source)
	if err != nil {
		b.Fatal(err)
	}
	oo := opt.Options{Config: cfg}
	switch cfg {
	case opt.CustMM:
		oo.Lazy = true
	case opt.Selective:
		cg, err := p.CollectProfile(driver.RunOptions{Overrides: bench.Train})
		if err != nil {
			b.Fatal(err)
		}
		oo.Specializations = specialize.Run(p.Prog, cg, params).Specializations
	}
	c, err := opt.Compile(p.Prog, oo)
	if err != nil {
		b.Fatal(err)
	}
	return &prepared{prog: p, comp: c, test: bench.Test}
}

// measure runs the compiled program b.N times and reports the counter
// metrics of the final run.
func (pr *prepared) measure(b *testing.B, mech interp.Mechanism) *driver.Result {
	b.Helper()
	var last *driver.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := driver.Execute(pr.comp, driver.RunOptions{Overrides: pr.test, Mechanism: mech})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Counters.DynamicDispatches()), "dispatches")
	b.ReportMetric(float64(last.Counters.Cycles), "cycles")
	b.ReportMetric(float64(last.Stats.Versions), "versions")
	return last
}

func forEachBenchConfig(b *testing.B, f func(b *testing.B, bench programs.Benchmark, cfg opt.Config)) {
	for _, bench := range programs.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			for _, cfg := range opt.Configs() {
				cfg := cfg
				b.Run(cfg.String(), func(b *testing.B) { f(b, bench, cfg) })
			}
		})
	}
}

// BenchmarkFig5Dispatches regenerates Figure 5 (left): the number of
// dynamic dispatches per benchmark and configuration.
func BenchmarkFig5Dispatches(b *testing.B) {
	forEachBenchConfig(b, func(b *testing.B, bench programs.Benchmark, cfg opt.Config) {
		pr := prepare(b, bench, cfg, specialize.Params{})
		pr.measure(b, interp.MechPIC)
	})
}

// BenchmarkFig5Speed regenerates Figure 5 (right): execution speed.
// ns/op is the interpreter wall time; the "cycles" metric is the
// machine-independent cost model EXPERIMENTS.md reports.
func BenchmarkFig5Speed(b *testing.B) {
	forEachBenchConfig(b, func(b *testing.B, bench programs.Benchmark, cfg opt.Config) {
		pr := prepare(b, bench, cfg, specialize.Params{})
		res := pr.measure(b, interp.MechPIC)
		b.ReportMetric(float64(res.Wall.Nanoseconds()), "wall-ns/run")
	})
}

// BenchmarkFig6StaticVersions regenerates Figure 6 (left): the number
// of routines a statically-compiled system produces.
func BenchmarkFig6StaticVersions(b *testing.B) {
	forEachBenchConfig(b, func(b *testing.B, bench programs.Benchmark, cfg opt.Config) {
		pr := prepare(b, bench, cfg, specialize.Params{})
		for i := 0; i < b.N; i++ {
			_ = pr.comp.StaticVersionCount()
		}
		b.ReportMetric(float64(pr.comp.StaticVersionCount()), "static-versions")
	})
}

// BenchmarkFig6InvokedVersions regenerates Figure 6 (right): routines
// actually invoked, the dynamic-compilation space metric.
func BenchmarkFig6InvokedVersions(b *testing.B) {
	forEachBenchConfig(b, func(b *testing.B, bench programs.Benchmark, cfg opt.Config) {
		pr := prepare(b, bench, cfg, specialize.Params{})
		var invoked int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := driver.Execute(pr.comp, driver.RunOptions{Overrides: pr.test})
			if err != nil {
				b.Fatal(err)
			}
			invoked = res.Invoked
		}
		b.ReportMetric(float64(invoked), "invoked-versions")
	})
}

// BenchmarkTable2 characterizes each benchmark under Base (the row the
// other figures normalize against).
func BenchmarkTable2(b *testing.B) {
	for _, bench := range programs.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			pr := prepare(b, bench, opt.Base, specialize.Params{})
			res := pr.measure(b, interp.MechPIC)
			b.ReportMetric(float64(res.Counters.MethodEntries), "method-entries")
		})
	}
}

// BenchmarkSetExample runs the paper's §2 Set example across all
// configurations (threshold lowered to suit its smaller call counts).
func BenchmarkSetExample(b *testing.B) {
	bench := programs.Sets()
	for _, cfg := range opt.Configs() {
		cfg := cfg
		b.Run(cfg.String(), func(b *testing.B) {
			pr := prepare(b, bench, cfg, specialize.Params{Threshold: 200})
			pr.measure(b, interp.MechPIC)
		})
	}
}

// BenchmarkAblationThreshold sweeps the SpecializationThreshold (§3.4:
// "the algorithm currently uses a very simple heuristic"): lower
// thresholds specialize more aggressively.
func BenchmarkAblationThreshold(b *testing.B) {
	bench, _ := programs.ByName("Compiler")
	for _, th := range []int64{-1, 10, 100, 1000, 10000} {
		th := th
		name := "all"
		if th > 0 {
			name = itoa(th)
		}
		b.Run("threshold="+name, func(b *testing.B) {
			pr := prepare(b, bench, opt.Selective, specialize.Params{Threshold: th})
			pr.measure(b, interp.MechPIC)
		})
	}
}

// BenchmarkAblationCascade measures §3.3's cascading specializations:
// without them, statically-bound callers of specialized methods fall
// back to run-time version selection.
func BenchmarkAblationCascade(b *testing.B) {
	bench, _ := programs.ByName("Typechecker")
	for _, off := range []bool{false, true} {
		off := off
		name := "cascade=on"
		if off {
			name = "cascade=off"
		}
		b.Run(name, func(b *testing.B) {
			pr := prepare(b, bench, opt.Selective, specialize.Params{DisableCascade: off})
			pr.measure(b, interp.MechPIC)
		})
	}
}

// BenchmarkAblationCombination measures §3.2's tuple combination.
func BenchmarkAblationCombination(b *testing.B) {
	bench, _ := programs.ByName("InstSched")
	for _, off := range []bool{false, true} {
		off := off
		name := "combination=on"
		if off {
			name = "combination=off"
		}
		b.Run(name, func(b *testing.B) {
			pr := prepare(b, bench, opt.Selective, specialize.Params{DisableCombination: off})
			pr.measure(b, interp.MechPIC)
		})
	}
}

// BenchmarkAblationTupleProfiles measures the §3.2 extension that
// prunes combined specializations no profiled call ever exercised.
func BenchmarkAblationTupleProfiles(b *testing.B) {
	bench, _ := programs.ByName("InstSched")
	for _, on := range []bool{false, true} {
		on := on
		name := "tuple-profiles=off"
		if on {
			name = "tuple-profiles=on"
		}
		b.Run(name, func(b *testing.B) {
			pr := prepare(b, bench, opt.Selective, specialize.Params{UseTupleProfiles: on})
			pr.measure(b, interp.MechPIC)
		})
	}
}

// BenchmarkAblationSpaceBudget measures the §3.4 fixed-space-budget
// heuristic at several budgets.
func BenchmarkAblationSpaceBudget(b *testing.B) {
	bench, _ := programs.ByName("InstSched")
	for _, budget := range []int{2, 8, 32, 128} {
		budget := budget
		b.Run("budget="+itoa(int64(budget)), func(b *testing.B) {
			pr := prepare(b, bench, opt.Selective, specialize.Params{SpaceBudget: budget})
			pr.measure(b, interp.MechPIC)
		})
	}
}

// BenchmarkAblationInlining isolates the indirect benefit of static
// binding (§2: "having the messages be dynamically dispatched also
// prevents other optimizations, such as inlining").
func BenchmarkAblationInlining(b *testing.B) {
	bench, _ := programs.ByName("Richards")
	for _, off := range []bool{false, true} {
		off := off
		name := "inlining=on"
		if off {
			name = "inlining=off"
		}
		b.Run(name, func(b *testing.B) {
			p, err := driver.Load(bench.Source)
			if err != nil {
				b.Fatal(err)
			}
			c, err := opt.Compile(p.Prog, opt.Options{Config: opt.CHA, DisableInlining: off})
			if err != nil {
				b.Fatal(err)
			}
			pr := &prepared{prog: p, comp: c, test: bench.Test}
			pr.measure(b, interp.MechPIC)
		})
	}
}

// BenchmarkAblationDispatchMech compares the run-time lookup mechanisms
// of §3.5 under the Base configuration (every send dispatches).
func BenchmarkAblationDispatchMech(b *testing.B) {
	bench, _ := programs.ByName("Richards")
	for _, mech := range []interp.Mechanism{interp.MechPIC, interp.MechGlobal, interp.MechTables} {
		mech := mech
		b.Run(mech.String(), func(b *testing.B) {
			pr := prepare(b, bench, opt.Base, specialize.Params{})
			res := pr.measure(b, mech)
			b.ReportMetric(float64(res.Counters.PICHits), "pic-hits")
		})
	}
}

// BenchmarkAblationReturnTypes measures the §6 future-work extension
// (return-value class propagation) on top of CHA.
func BenchmarkAblationReturnTypes(b *testing.B) {
	bench, _ := programs.ByName("Compiler")
	for _, on := range []bool{false, true} {
		on := on
		name := "return-types=off"
		if on {
			name = "return-types=on"
		}
		b.Run(name, func(b *testing.B) {
			p, err := driver.Load(bench.Source)
			if err != nil {
				b.Fatal(err)
			}
			c, err := opt.Compile(p.Prog, opt.Options{Config: opt.CHA, ReturnTypeAnalysis: on})
			if err != nil {
				b.Fatal(err)
			}
			pr := &prepared{prog: p, comp: c, test: bench.Test}
			pr.measure(b, interp.MechPIC)
		})
	}
}

// BenchmarkAblationInstantiation measures RTA-style instantiation
// analysis on top of CHA (a natural companion analysis: classes the
// program never creates stop blocking unique-target proofs).
func BenchmarkAblationInstantiation(b *testing.B) {
	bench, _ := programs.ByName("Richards")
	for _, on := range []bool{false, true} {
		on := on
		name := "instantiation=off"
		if on {
			name = "instantiation=on"
		}
		b.Run(name, func(b *testing.B) {
			p, err := driver.Load(bench.Source)
			if err != nil {
				b.Fatal(err)
			}
			c, err := opt.Compile(p.Prog, opt.Options{Config: opt.CHA, InstantiationAnalysis: on})
			if err != nil {
				b.Fatal(err)
			}
			pr := &prepared{prog: p, comp: c, test: bench.Test}
			pr.measure(b, interp.MechPIC)
		})
	}
}

// BenchmarkProfileCollection measures the overhead of gathering the
// weighted call graph (§3.7.2 reports 15-50% for PIC-based profiling).
func BenchmarkProfileCollection(b *testing.B) {
	bench, _ := programs.ByName("Typechecker")
	p, err := driver.Load(bench.Source)
	if err != nil {
		b.Fatal(err)
	}
	c, err := opt.Compile(p.Prog, opt.Options{Config: opt.Base})
	if err != nil {
		b.Fatal(err)
	}
	for _, profiling := range []bool{false, true} {
		profiling := profiling
		name := "instrumentation=off"
		if profiling {
			name = "instrumentation=on"
		}
		b.Run(name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ro := driver.RunOptions{Overrides: bench.Train}
				if profiling {
					ro.Profile = profile.NewCallGraph(p.Prog)
				}
				if _, err := driver.Execute(c, ro); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	if neg {
		return "-" + string(buf)
	}
	return string(buf)
}
