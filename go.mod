module selspec

go 1.22
