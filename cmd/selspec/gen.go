package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"selspec/internal/gen"
	"selspec/internal/profdb"
)

// runGen implements "selspec gen": render a seeded stress program from
// internal/gen to stdout (or -o), or run the scale probe over it. The
// output is fully determined by the flags — the same invocation always
// produces byte-identical source — so a failing differential cell can
// be reproduced from nothing but its seed:
//
//	selspec gen -seed 32 -classes 21 -methods 92 > repro.mc
//	selspec -config Selective -engine vm repro.mc
func runGen(args []string) error {
	fs := flag.NewFlagSet("selspec gen", flag.ContinueOnError)
	var (
		seed    = fs.Uint64("seed", 1, "generator seed (determines the whole program)")
		classes = fs.Int("classes", 0, "number of classes (0 = default 40)")
		methods = fs.Int("methods", 0, "number of methods (0 = 4x classes)")
		depth   = fs.Int("depth", 0, "minimum inheritance depth to build (0 = default)")
		arity   = fs.Int("arity", 0, "maximum multi-method dispatched arity, 1-3 (0 = default 3)")
		clean   = fs.Bool("check-clean", false, "generate a program the static checker reports no findings on")
		probe   = fs.Bool("probe", false, "instead of source, print the scale probe (hierarchy + dispatch-table cost)")
		jsonOut = fs.Bool("json", false, "with -probe: emit the report as JSON")
		stats   = fs.Bool("stats", false, "print generator stats (classes, methods, depth, MI) to stderr")
		outPath = fs.String("o", "", "write output to this file (atomic) instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("gen: unexpected arguments %v", fs.Args())
	}

	cfg := gen.Config{
		Seed:       *seed,
		Classes:    *classes,
		Methods:    *methods,
		Depth:      *depth,
		MaxArity:   *arity,
		CheckClean: *clean,
	}

	emit := func(data []byte) error {
		if *outPath != "" {
			if err := profdb.WriteFileAtomic(*outPath, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %d bytes to %s\n", len(data), *outPath)
			return nil
		}
		_, err := os.Stdout.Write(data)
		return err
	}

	if *probe {
		rep, err := gen.Probe(cfg)
		if err != nil {
			return err
		}
		if *jsonOut {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			return emit(append(data, '\n'))
		}
		return emit([]byte(rep.String() + "\n"))
	}

	g := gen.New(cfg)
	if *stats {
		st := g.Stats
		fmt.Fprintf(os.Stderr, "gen: seed=%d classes=%d methods=%d gfs=%d depth=%d arity=%d mi=%d\n",
			*seed, st.Classes, st.Methods, st.GFs, st.MaxDepth, st.MaxArity, st.MIClasses)
	}
	return emit([]byte(g.Source()))
}
