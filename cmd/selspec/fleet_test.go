package main

// End-to-end test of "selspec fleet" exactly as a deployment runs it:
// runFleet spawns real worker subprocesses (this test binary
// re-executing itself in serve mode via TestMain), a worker is killed
// with a real SIGKILL taken from the /readyz topology, and the drain
// is triggered by a real SIGTERM.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"selspec/internal/fleet"
)

func TestMain(m *testing.M) {
	// Re-exec hook: "selspec fleet" launches os.Executable() — in
	// tests, this binary — with "serve" argv. Become that worker
	// instead of running the test suite.
	if os.Getenv("SELSPEC_TEST_REEXEC") == "1" && len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "reexec serve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func fleetPost(t *testing.T, base string, reqBody string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/run", "application/json", strings.NewReader(reqBody))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func TestFleetLifecycleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess lifecycle test")
	}
	t.Setenv("SELSPEC_TEST_REEXEC", "1")
	addrCh := make(chan net.Addr, 1)
	fleetListenHook = func(a net.Addr) { addrCh <- a }
	defer func() { fleetListenHook = nil }()

	done := make(chan error, 1)
	go func() {
		done <- runFleet([]string{"-addr", "127.0.0.1:0", "-workers", "2",
			"-restart-backoff", "50ms", "-probe-interval", "50ms"})
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("fleet exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("fleet never started listening")
	}

	const req = `{"bench":"Richards","config":"Base"}`
	code, want := fleetPost(t, base, req)
	if code != http.StatusOK {
		t.Fatalf("first routed request: %d %s", code, want)
	}

	// Take a worker PID from the fleet topology and SIGKILL it — the
	// operator's view of a worker crash.
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var st fleet.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Workers) != 2 || st.Workers[0].PID == 0 {
		t.Fatalf("readyz topology incomplete: %+v", st)
	}
	if err := syscall.Kill(st.Workers[0].PID, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	// Service continues across the death: every request keeps getting
	// the byte-identical answer (retries hide the dead worker).
	for i := 0; i < 5; i++ {
		code, body := fleetPost(t, base, req)
		if code != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("request %d after SIGKILL: %d %q, want 200 %q", i, code, body, want)
		}
	}

	// The supervisor restarts the victim and the merged metrics say so.
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(body), "selspec_fleet_worker_restarts_total 1\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart never surfaced in /metrics:\n%s", body)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// A real SIGTERM must drain the router and both workers, and
	// runFleet must return nil — the CLI's exit-0 contract.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v, want nil", err)
		}
	case <-time.After(45 * time.Second):
		t.Fatal("fleet did not exit after SIGTERM")
	}
}

func TestFleetFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-chaos", "1.5"},
		{"-chaos", "-0.1"},
		{"stray-positional"},
	} {
		if err := runFleet(args); err == nil {
			t.Errorf("runFleet(%v): expected error", args)
		}
	}
}
