package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeLifecycle drives the real serve mode end to end in-process:
// bind :0, serve a request, check liveness, then deliver a real
// SIGTERM and require a clean drain (runServe returns nil).
func TestServeLifecycle(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	serveListenHook = func(a net.Addr) { addrCh <- a }
	defer func() { serveListenHook = nil }()

	done := make(chan error, 1)
	go func() { done <- runServe([]string{"-addr", "127.0.0.1:0"}) }()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never bound its listener")
	}

	body, err := json.Marshal(map[string]any{
		"source": cliProg, "config": "Selective", "stats": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var run struct {
		Value  string `json:"value"`
		Output string `json:"output"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || run.Value != "15" || !strings.Contains(run.Output, "total 15") {
		t.Fatalf("run: status %d value %q output %q", resp.StatusCode, run.Value, run.Output)
	}

	for _, path := range []string{"/healthz", "/readyz"} {
		hr, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, hr.StatusCode)
		}
	}

	// A real SIGTERM (not a method call) must drain and exit cleanly.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve did not drain cleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}

	// The listener is gone after the drain.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still serving after drain")
	}
}

func TestServeFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-addr"},                  // missing value
		{"extra-arg"},              // positional args rejected
		{"-chaos", "1.5"},          // probability out of range
		{"-addr", "not-an-addr:x"}, // unparseable port
	}
	for _, args := range cases {
		if err := runServe(args); err == nil {
			t.Errorf("runServe(%v): expected error", args)
		}
	}
}

// TestServeChaosMode: with -chaos armed, the server must keep serving
// through injected faults — every response is either a success or a
// structured error, and the process-level health stays green.
func TestServeChaosMode(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	serveListenHook = func(a net.Addr) { addrCh <- a }
	defer func() { serveListenHook = nil }()

	done := make(chan error, 1)
	go func() {
		done <- runServe([]string{"-addr", "127.0.0.1:0", "-chaos", "0.5", "-chaos-seed", "7",
			"-breaker-threshold", "1000"})
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("serve never bound its listener")
	}

	okCount, faultCount := 0, 0
	for i := 0; i < 16; i++ {
		body := fmt.Sprintf(`{"source": %q, "label": "chaos-%d"}`, cliProg, i)
		resp, err := http.Post(base+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var payload map[string]any
		if derr := json.NewDecoder(resp.Body).Decode(&payload); derr != nil {
			t.Fatalf("request %d: undecodable body: %v", i, derr)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			okCount++
			if payload["value"] != "15" {
				t.Errorf("request %d: value = %v", i, payload["value"])
			}
		case http.StatusInternalServerError:
			faultCount++
			if payload["kind"] != "panic" {
				t.Errorf("request %d: kind = %v", i, payload["kind"])
			}
		default:
			t.Errorf("request %d: unexpected status %d (%v)", i, resp.StatusCode, payload)
		}
	}
	if okCount == 0 {
		t.Error("chaos mode: no request succeeded")
	}
	if faultCount == 0 {
		t.Error("chaos p=0.5 over 16 requests injected nothing (seed drift?)")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("chaos serve did not drain cleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("chaos serve did not exit after SIGTERM")
	}
}
