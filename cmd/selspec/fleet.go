package main

// "selspec fleet": the crash-tolerant multi-process mode. A supervisor
// spawns N `selspec serve` workers as subprocesses, restarts the ones
// that die (with backoff and a crash-loop budget), and fronts them with
// a consistent-hash router that retries around failures — see
// internal/fleet and README "Fleet mode".

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"selspec/internal/fleet"
	"selspec/internal/obs"
)

// fleetListenHook mirrors serveListenHook for the fleet router's bound
// address.
var fleetListenHook func(net.Addr)

// runFleet implements "selspec fleet". It blocks until SIGTERM/SIGINT,
// then drains the router and every worker, exiting 0 on a clean drain.
func runFleet(args []string) error {
	fs := flag.NewFlagSet("selspec fleet", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "router listen address")
		workers  = fs.Int("workers", 3, "number of serve worker subprocesses")
		timeout  = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxT     = fs.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = -timeout)")
		maxConc  = fs.Int("max-concurrent", 0, "per-worker max concurrent requests (0 = worker default)")
		queue    = fs.Int("queue", 0, "per-worker admission queue depth (0 = worker default)")
		retries  = fs.Int("retries", 2, "extra attempts against the next ring worker after a retryable failure")
		probeInt = fs.Duration("probe-interval", 250*time.Millisecond, "worker /readyz probe cadence")
		eject    = fs.Int("eject-after", 2, "consecutive probe failures that eject a worker from the ring")
		restartB = fs.Duration("restart-backoff", 250*time.Millisecond, "base delay before restarting a dead worker (doubles per consecutive failed start)")
		restartM = fs.Duration("restart-backoff-max", 15*time.Second, "cap on the restart backoff")
		budget   = fs.Int("crashloop-budget", 5, "consecutive failed starts before a worker stops being restarted")
		drainT   = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight work after SIGTERM")
		verify   = fs.Bool("verify", false, "pass -verify to every worker")
		chaosP   = fs.Float64("chaos", 0, "TESTING: per-request fault-injection probability, passed to every worker")
		chaosK   = fs.Duration("chaos-kill", 0, "TESTING: SIGKILL a random healthy worker this often (0 = never)")
		seed     = fs.Int64("chaos-seed", 1, "TESTING: PRNG seed for -chaos workers and the -chaos-kill picker")
		profDir  = fs.String("profile-db", "", "base directory for per-worker profile databases (worker i persists under <dir>/worker<i>)")
		halfLife = fs.String("profile-half-life", "", "profile decay half-life, passed to every worker")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fleet: unexpected arguments %v", fs.Args())
	}
	if *workers <= 0 {
		return fmt.Errorf("fleet: -workers must be positive, got %d", *workers)
	}
	if *chaosP < 0 || *chaosP > 1 {
		return fmt.Errorf("fleet: -chaos must be in [0,1], got %v", *chaosP)
	}
	if *halfLife != "" && *profDir == "" {
		return fmt.Errorf("fleet: -profile-half-life requires -profile-db")
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("fleet: locating own binary: %w", err)
	}

	reg := obs.NewRegistry()
	f, err := fleet.New(fleet.Config{
		Workers: *workers,
		WorkerCommand: func(i int) *exec.Cmd {
			// Each worker is this very binary in serve mode on an
			// ephemeral port; the supervisor learns the port from the
			// worker's "listening on" line.
			wargs := []string{"serve", "-addr", "127.0.0.1:0",
				"-timeout", timeout.String(), "-drain-timeout", drainT.String()}
			if *maxT > 0 {
				wargs = append(wargs, "-max-timeout", maxT.String())
			}
			if *maxConc > 0 {
				wargs = append(wargs, "-max-concurrent", fmt.Sprint(*maxConc))
			}
			if *queue > 0 {
				wargs = append(wargs, "-queue", fmt.Sprint(*queue))
			}
			if *verify {
				wargs = append(wargs, "-verify")
			}
			if *profDir != "" {
				// Each worker owns a private database directory: the
				// router forwards /profiles for a program to its ring
				// owner only, so a restarting worker recovers exactly
				// the uploads it acked, from its own WAL.
				wargs = append(wargs, "-profile-db", filepath.Join(*profDir, fmt.Sprintf("worker%d", i)))
				if *halfLife != "" {
					wargs = append(wargs, "-profile-half-life", *halfLife)
				}
			}
			if *chaosP > 0 {
				// Distinct per-worker seeds so the fleet's fault pattern
				// is reproducible but not in lockstep across workers.
				wargs = append(wargs, "-chaos", fmt.Sprint(*chaosP),
					"-chaos-seed", fmt.Sprint(*seed+int64(i)))
			}
			return exec.Command(self, wargs...)
		},
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxT,
		MaxRetries:     *retries,
		ProbeInterval:  *probeInt,
		EjectAfter:     *eject,
		RestartBackoff: *restartB, RestartBackoffMax: *restartM,
		CrashLoopBudget: *budget,
		DrainTimeout:    *drainT,
		Seed:            *seed,
		Metrics:         reg,
	})
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	f.OnListen = func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "selspec fleet: router listening on %s (%d workers)\n", a, *workers)
		if fleetListenHook != nil {
			fleetListenHook(a)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *chaosK > 0 {
		// The kill loop is the fleet-level chaos drill: a worker dies
		// by SIGKILL — no drain, no goodbye — at a fixed cadence, and
		// the acceptance criterion is that clients never notice beyond
		// latency. Runs until drain begins.
		go func() {
			rng := rand.New(rand.NewSource(*seed))
			t := time.NewTicker(*chaosK)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					victim := rng.Intn(*workers)
					if f.KillWorker(victim) {
						fmt.Fprintf(os.Stderr, "selspec fleet: CHAOS killed worker %d\n", victim)
					}
				}
			}
		}()
		fmt.Fprintf(os.Stderr, "selspec fleet: CHAOS KILL armed (every %v, seed=%d)\n", *chaosK, *seed)
	}

	if err := f.ListenAndServe(ctx, *addr); err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	fmt.Fprintln(os.Stderr, "selspec fleet: drained cleanly")
	return nil
}
