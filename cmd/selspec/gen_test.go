package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selspec/internal/lang"
)

// TestGenDeterministic: the same invocation emits byte-identical,
// parseable source; a different seed emits a different program.
func TestGenDeterministic(t *testing.T) {
	a, err := execMain(t, "gen", "-seed", "3", "-classes", "8", "-methods", "24")
	if err != nil {
		t.Fatal(err)
	}
	b, err := execMain(t, "gen", "-seed", "3", "-classes", "8", "-methods", "24")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed produced different source")
	}
	if _, err := lang.Parse(a); err != nil {
		t.Fatalf("generated source does not parse: %v", err)
	}
	c, err := execMain(t, "gen", "-seed", "4", "-classes", "8", "-methods", "24")
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical source")
	}
}

// TestGenRunPipeline: gen -o writes a program the main command can run
// under Selective — the documented failing-cell repro workflow.
func TestGenRunPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.mc")
	if _, err := execMain(t, "gen", "-seed", "5", "-classes", "8", "-methods", "24", "-o", path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty output file")
	}
	out, err := execMain(t, "-config", "Selective", "-engine", "vm", "-verify", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=> ") {
		t.Fatalf("no result value in output: %q", out)
	}
}

// TestGenProbe: the probe renders the hierarchy/dispatch cost report.
func TestGenProbe(t *testing.T) {
	out, err := execMain(t, "gen", "-seed", "2", "-classes", "12", "-probe")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"classes=12", "applicable:", "mm-tables:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("probe output missing %q:\n%s", want, out)
		}
	}
}

// TestGenBadArgs: positional arguments are rejected.
func TestGenBadArgs(t *testing.T) {
	if _, err := execMain(t, "gen", "stray.mc"); err == nil {
		t.Fatal("expected an error for stray positional args")
	}
}
