// Command selspec compiles and runs a Mini-Cecil program under one of
// the paper's five compiler configurations, printing the program output
// and (optionally) the dispatch/code-space statistics the paper
// evaluates. The check subcommand runs the static analyzer instead of
// the program.
//
// Usage:
//
//	selspec [flags] program.mc
//	selspec [flags] -bench Richards
//	selspec check [-format text|json] [-bench Name] program.mc...
//	selspec serve [-addr host:port] [-max-concurrent N] [-timeout 30s]
//	selspec fleet [-addr host:port] [-workers N] [-retries N]
//	selspec gen [-seed N] [-classes N] [-methods N] [-depth N] [-probe]
//
// Examples:
//
//	selspec -config Base prog.mc
//	selspec -config Selective -threshold 1000 -stats prog.mc
//	selspec -bench Richards -config Cust-MM -stats
//	selspec -profile out.json prog.mc        # write a training profile
//	selspec -use-profile out.json -config Selective prog.mc
//	selspec check -format json prog.mc       # static diagnostics as JSON
//	selspec serve -addr :8080                # fault-isolated HTTP service
//	selspec fleet -workers 4 -addr :8080     # supervised multi-process fleet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"selspec/internal/check"
	"selspec/internal/driver"
	"selspec/internal/interp"
	"selspec/internal/ir"
	"selspec/internal/obs"
	"selspec/internal/opt"
	"selspec/internal/pipeline"
	"selspec/internal/profdb"
	"selspec/internal/profile"
	"selspec/internal/programs"
	"selspec/internal/specialize"
	"selspec/internal/vm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "selspec:", err)
		var ec interface{ ExitCode() int }
		if errors.As(err, &ec) {
			os.Exit(ec.ExitCode())
		}
		os.Exit(1)
	}
}

func run() error {
	if len(os.Args) > 1 && os.Args[1] == "check" {
		return runCheck(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		return runServe(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		return runFleet(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "gen" {
		return runGen(os.Args[2:])
	}
	var (
		configName = flag.String("config", "Base", "compiler configuration: "+strings.Join(opt.ConfigNames(), ", "))
		benchName  = flag.String("bench", "", "run an embedded benchmark ("+strings.Join(programs.Names(), ", ")+") instead of a file")
		threshold  = flag.Int64("threshold", specialize.DefaultThreshold, "specialization threshold (arc invocations)")
		mechName   = flag.String("dispatch", "PIC", "dispatch mechanism: "+strings.Join(interp.MechanismNames(), ", "))
		engineName = flag.String("engine", "", "execution engine: "+strings.Join(driver.EngineNames(), ", ")+" (default vm, falling back to tree on unsupported constructs)")
		stats      = flag.Bool("stats", false, "print dispatch and code-space statistics")
		writeProf  = flag.String("profile", "", "run under Base with instrumentation and write the call-graph profile to this file")
		useProf    = flag.String("use-profile", "", "read a previously written profile instead of running a training pass (Selective)")
		profDBDir  = flag.String("profile-db", "", "read the aggregated profile for -bench from this profile database directory (Selective)")
		noInline   = flag.Bool("no-inline", false, "disable inlining")
		retTypes   = flag.Bool("return-types", false, "enable return-value class propagation (paper §6 extension)")
		rta        = flag.Bool("instantiation", false, "enable instantiation-aware (RTA-style) class analysis")
		lazy       = flag.Bool("lazy", false, "lazy (dynamic) compilation: compile method versions on first invocation")
		verify     = flag.Bool("verify", false, "run the bytecode verifier over every compiled proc before (and, for lazy configurations, after) execution")
		stepLimit  = flag.Uint64("step-limit", 0, "abort after this many interpreter steps (0 = unlimited)")
		depthLimit = flag.Int("depth-limit", 0, "abort beyond this call depth (0 = default limit, negative = unlimited)")
		timeout    = flag.Duration("timeout", 0, "abort after this wall-clock duration, e.g. 30s (0 = none)")
		traceDisp  = flag.Bool("trace", false, "trace every dynamic dispatch decision and print a per-stage span summary to stderr")
	)
	flag.Parse()

	// -trace also times every pipeline stage this invocation runs
	// (parse, lower, profile, specialize, compile, interp) and prints
	// the aggregated span summary on the way out.
	if *traceDisp {
		tr := obs.NewTracer(0)
		restore := pipeline.SetObserver(pipeline.NewObserver(nil, tr))
		defer restore()
		defer func() {
			fmt.Fprintln(os.Stderr, "selspec: per-stage span summary")
			tr.WriteSummary(os.Stderr)
		}()
	}

	cfg, err := opt.ParseConfig(*configName)
	if err != nil {
		return err
	}
	mech, err := interp.ParseMechanism(*mechName)
	if err != nil {
		return err
	}
	engine, err := driver.ParseEngine(*engineName)
	if err != nil {
		return err
	}

	// Resolve the program source.
	var src, label string
	var train, test map[string]int64
	switch {
	case *benchName != "":
		b, ok := programs.ByName(*benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (valid: %s)", *benchName, strings.Join(programs.Names(), ", "))
		}
		src, train, test, label = b.Source, b.Train, b.Test, b.Name
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		src, label = string(data), flag.Arg(0)
	default:
		flag.Usage()
		return fmt.Errorf("expected a program file or -bench name")
	}

	p, err := driver.LoadNamed(label, src)
	if err != nil {
		return err
	}
	// Ctrl-C / SIGTERM cancels the run through the same context
	// plumbing as -timeout: the interpreter winds down with a
	// positioned error and pending output (profile files, stats) is
	// either completely written or not started — never torn mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	guards := driver.RunOptions{StepLimit: *stepLimit, DepthLimit: *depthLimit, Timeout: *timeout, Context: ctx}

	// Profile-writing mode.
	if *writeProf != "" {
		ro := guards
		ro.Overrides = train
		cg, err := p.CollectProfile(ro)
		if err != nil {
			return err
		}
		data, err := cg.MarshalJSON()
		if err != nil {
			return err
		}
		// Atomic write: a crash (or Ctrl-C) mid-write never leaves a
		// torn profile behind — consumers see the old file or the new
		// one, never a prefix.
		if err := profdb.WriteFileAtomic(*writeProf, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d arcs (total weight %d) to %s\n", cg.Len(), cg.TotalWeight(), *writeProf)
		return nil
	}

	oo := opt.Options{Config: cfg, DisableInlining: *noInline, Lazy: *lazy,
		ReturnTypeAnalysis: *retTypes, InstantiationAnalysis: *rta}
	if cfg == opt.CustMM {
		oo.Lazy = true
	}
	if cfg == opt.Selective {
		var cg *profile.CallGraph
		switch {
		case *profDBDir != "":
			if *benchName == "" {
				return fmt.Errorf("-profile-db requires -bench")
			}
			if *useProf != "" {
				return fmt.Errorf("-profile-db and -use-profile are mutually exclusive")
			}
			db, err := profdb.Open(*profDBDir, profdb.Config{})
			if err != nil {
				return fmt.Errorf("opening profile database: %w", err)
			}
			wire, werr := db.Export(*benchName)
			db.Close()
			if werr != nil {
				return fmt.Errorf("profile database: %w", werr)
			}
			data, err := wire.Marshal()
			if err != nil {
				return err
			}
			cg = profile.NewCallGraph(p.Prog)
			if err := cg.UnmarshalInto(data); err != nil {
				return fmt.Errorf("database profile does not match program: %w", err)
			}
		case *useProf != "":
			data, err := os.ReadFile(*useProf)
			if err != nil {
				return err
			}
			cg = profile.NewCallGraph(p.Prog)
			if err := cg.UnmarshalInto(data); err != nil {
				return err
			}
		default:
			ro := guards
			ro.Overrides = train
			cg, err = p.CollectProfile(ro)
			if err != nil {
				return fmt.Errorf("training run: %w", err)
			}
		}
		res, err := pipeline.Specialize(label, p.Prog, cg, specialize.Params{Threshold: *threshold})
		if err != nil {
			return err
		}
		oo.Specializations = res.Specializations
		if *stats {
			fmt.Fprintf(os.Stderr, "specialized %d methods (+%d versions, max %d, avg %.2f)\n",
				res.Stats.MethodsSpecialized, res.Stats.AddedSpecs, res.Stats.MaxPerMethod, res.Stats.AvgPerMethod)
		}
	}

	c, err := pipeline.Compile(label, p.Prog, oo)
	if err != nil {
		return err
	}
	in := interp.New(c)
	in.Out = os.Stdout
	in.Mech = mech
	in.StepLimit = *stepLimit
	in.DepthLimit = *depthLimit
	runCtx := ctx
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	in.Ctx = runCtx
	if *traceDisp {
		in.Trace = os.Stderr
	}

	// Benchmarks run on their measurement input.
	if test != nil {
		for name, val := range test {
			idx, ok := p.Prog.GlobalIdx[name]
			if !ok {
				return fmt.Errorf("benchmark override %q not found", name)
			}
			c.GlobalInits[idx] = &ir.Const{Kind: ir.KInt, Int: val}
		}
	}

	// Engine selection mirrors driver.Execute: the bytecode compiler
	// runs no guest code, so falling back to the tree tier on an
	// unsupported construct is side-effect free. Under -verify the
	// module is compiled and checked even when the tree tier will run.
	var mach *vm.Machine
	if engine == driver.EngineVM || *verify {
		var merr error
		if mach, merr = vm.New(in); merr != nil {
			engine = driver.EngineTree
			mach = nil
		}
	}
	if *verify && mach != nil {
		if err := pipeline.VerifyMachine(label, cfg.String(), mach); err != nil {
			return err
		}
	}
	var val interp.Value
	var rerr error
	if engine == driver.EngineVM {
		val, rerr = pipeline.RunVM(label, cfg.String(), mach)
	} else {
		val, rerr = pipeline.RunInterp(label, cfg.String(), in)
	}
	if rerr != nil {
		return rerr
	}
	// Lazy configurations compile procs during the run; re-verify so
	// every specialized version that materialized is covered.
	if *verify && engine == driver.EngineVM {
		if err := pipeline.VerifyMachine(label, cfg.String(), mach); err != nil {
			return err
		}
	}
	fmt.Printf("=> %s\n", val)

	if *stats {
		ct := in.Counters
		st := c.Stats()
		fmt.Fprintf(os.Stderr, "dispatches=%d (PIC hits=%d misses=%d) version-selects=%d static-calls=%d\n",
			ct.Dispatches, ct.PICHits, ct.PICMisses, ct.VersionSelects, ct.StaticCalls)
		fmt.Fprintf(os.Stderr, "cycles=%d method-entries=%d closure-calls=%d\n",
			ct.Cycles, ct.MethodEntries, ct.ClosureCalls)
		fmt.Fprintf(os.Stderr, "versions=%d (invoked %d) ir-nodes=%d inlined=%d static-bound=%d\n",
			st.Versions, in.InvokedVersions(), st.IRNodes, st.InlinedCalls, st.StaticBound)
	}
	return nil
}

// findingsError reports that the analyses produced diagnostics — the
// program is suspect, the analyzer is fine. Exit status 1.
type findingsError struct{ n int }

func (e *findingsError) Error() string {
	return fmt.Sprintf("check: %d diagnostic%s", e.n, pluralS(e.n))
}
func (e *findingsError) ExitCode() int { return 1 }

// checkInternalError reports that the analyzer itself failed (contained
// panic, unreadable input mid-run, encoder failure) — distinct from
// findings so CI can tell "program has issues" from "tool broke".
// Exit status 2.
type checkInternalError struct{ err error }

func (e *checkInternalError) Error() string { return "check: internal error: " + e.err.Error() }
func (e *checkInternalError) Unwrap() error { return e.err }
func (e *checkInternalError) ExitCode() int { return 2 }

// runCheck implements "selspec check": run the static analyses from
// internal/check over files and/or an embedded benchmark, plus the
// bytecode diagnostics from internal/vmcheck when the unit compiles,
// print the diagnostics, and fail when any were found. Exit status: 0
// clean, 1 findings, 2 internal analyzer error.
func runCheck(args []string) error {
	fs := flag.NewFlagSet("selspec check", flag.ContinueOnError)
	var (
		format    = fs.String("format", check.Formats()[0], "output format: "+strings.Join(check.Formats(), ", "))
		inst      = fs.Bool("instantiation", true, "sharpen class sets with instantiation (RTA-style) analysis")
		benchName = fs.String("bench", "", "check an embedded benchmark ("+strings.Join(programs.Names(), ", ")+") instead of a file")
		bytecode  = fs.Bool("bytecode", true, "also run the bytecode-level checks (unreachable code, dead stores) over the compiled program")
		list      = fs.Bool("checks", false, "list the available checks and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, info := range check.Catalog() {
			fmt.Printf("%-24s %s\n", info.ID, info.Description)
		}
		return nil
	}
	validFormat := false
	for _, f := range check.Formats() {
		validFormat = validFormat || f == *format
	}
	if !validFormat {
		return fmt.Errorf("unknown format %q (valid: %s)", *format, strings.Join(check.Formats(), ", "))
	}

	type unit struct{ label, src string }
	var units []unit
	if *benchName != "" {
		b, ok := programs.ByName(*benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (valid: %s)", *benchName, strings.Join(programs.Names(), ", "))
		}
		units = append(units, unit{b.Name, b.Source})
	}
	for _, f := range fs.Args() {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		units = append(units, unit{f, string(data)})
	}
	if len(units) == 0 {
		fs.Usage()
		return fmt.Errorf("check: expected program files or a -bench name")
	}

	opts := check.Options{Instantiation: *inst}
	var all []check.Diagnostic
	for _, u := range units {
		// The boundary turns an analyzer panic into an error naming the
		// unit, instead of a crash that loses the other units' output.
		ds, err := pipeline.CheckSource(u.label, u.src, opts)
		if err != nil {
			return &checkInternalError{err}
		}
		if *bytecode {
			bds, err := bytecodeDiagnostics(u.label, u.src, len(ds) > 0)
			if err != nil {
				return &checkInternalError{err}
			}
			ds = append(ds, bds...)
		}
		all = append(all, ds...)
	}
	check.Sort(all)

	var werr error
	if *format == "json" {
		werr = check.WriteJSON(os.Stdout, all)
	} else {
		werr = check.WriteText(os.Stdout, all)
	}
	if werr != nil {
		return &checkInternalError{werr}
	}
	if len(all) > 0 {
		return &findingsError{len(all)}
	}
	return nil
}

// bytecodeDiagnostics compiles one unit under Base and runs the
// vm-level checks over the resulting module. Units the bytecode
// compiler declines (tree-only constructs) are skipped, as is any
// compilation failure on a unit the source-level analyses already
// flagged; a failure on a unit they called clean is an internal error.
func bytecodeDiagnostics(label, src string, hasSourceFindings bool) ([]check.Diagnostic, error) {
	skip := func(err error) ([]check.Diagnostic, error) {
		var ce *vm.CompileError
		if errors.As(err, &ce) || hasSourceFindings {
			return nil, nil
		}
		return nil, err
	}
	prog, err := pipeline.Load(label, src)
	if err != nil {
		return skip(err)
	}
	c, err := pipeline.Compile(label, prog, opt.Options{Config: opt.Base})
	if err != nil {
		return skip(err)
	}
	m, err := vm.New(interp.New(c))
	if err != nil {
		return skip(err)
	}
	return pipeline.CheckBytecode(label, m)
}

func pluralS(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
