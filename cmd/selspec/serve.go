package main

// "selspec serve": the long-running service mode. One process serves
// the full pipeline over HTTP with per-request fault isolation,
// admission control, deadlines and graceful drain — see
// internal/server for the machinery and README "Service mode" for the
// operational contract.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selspec/internal/obs"
	"selspec/internal/pipeline"
	"selspec/internal/profdb"
	"selspec/internal/server"
)

// orNone renders an optional flag value for log lines.
func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// serveListenHook, when non-nil, receives the bound address; tests
// listen on :0 and need the kernel-assigned port.
var serveListenHook func(net.Addr)

// runServe implements "selspec serve". It blocks until SIGTERM/SIGINT,
// then drains: admission stops, in-flight requests finish under the
// drain deadline, and the process exits 0 on a clean drain.
func runServe(args []string) error {
	fs := flag.NewFlagSet("selspec serve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		maxConc     = fs.Int("max-concurrent", 0, "max requests executing at once (0 = GOMAXPROCS)")
		queueDepth  = fs.Int("queue", 0, "admitted requests that may wait for a slot before shedding with 429 (0 = 2×max-concurrent)")
		timeout     = fs.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = fs.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = -timeout)")
		stepLimit   = fs.Uint64("step-limit", 0, "per-request interpreter step budget (0 = server default)")
		depthLimit  = fs.Int("depth-limit", 0, "per-request call-depth limit (0 = interpreter default, negative = unlimited)")
		drainT      = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests after SIGTERM")
		breakerN    = fs.Int("breaker-threshold", 3, "consecutive contained panics that open a program's circuit")
		breakerCool = fs.Duration("breaker-cooldown", 30*time.Second, "how long an open circuit rejects a crashing program")
		chaosP      = fs.Float64("chaos", 0, "TESTING: per-request probability of a seeded injected fault (panic or slow stage)")
		chaosSeed   = fs.Int64("chaos-seed", 1, "TESTING: PRNG seed for -chaos, for reproducible chaos runs")
		metricsAddr = fs.String("metrics-addr", "", "additionally serve /metrics on this separate ops address (\"\" = main listener only)")
		pprofOn     = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the -metrics-addr listener")
		verify      = fs.Bool("verify", false, "run the bytecode verifier over every request's compiled module before execution")
		profDir     = fs.String("profile-db", "", "directory for the durable profile database; enables POST/GET /profiles/{program}")
		halfLife    = fs.String("profile-half-life", "", "exponential decay half-life for aggregated profile weights (e.g. 24h; \"\" = no decay)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	if *chaosP < 0 || *chaosP > 1 {
		return fmt.Errorf("serve: -chaos must be in [0,1], got %v", *chaosP)
	}
	if *chaosP > 0 {
		disarm := pipeline.ArmFaults(pipeline.NewInjector(*chaosSeed, server.ChaosRules(*chaosP, 0)...))
		defer disarm()
		fmt.Fprintf(os.Stderr, "selspec serve: CHAOS MODE armed (p=%v seed=%d): injected faults will surface as per-request errors\n",
			*chaosP, *chaosSeed)
	}

	if *pprofOn && *metricsAddr == "" {
		return fmt.Errorf("serve: -pprof requires -metrics-addr")
	}

	// Observability is always on in service mode: the registry costs
	// nothing until scraped, and every Guard boundary feeds the
	// per-stage histograms via the armed pipeline observer.
	reg := obs.NewRegistry()
	restore := pipeline.SetObserver(pipeline.NewObserver(reg, nil))
	defer restore()

	// The profile database opens asynchronously: the server takes /run
	// traffic immediately while the WAL replays, and the /profiles
	// endpoints answer 503 + Retry-After until recovery completes.
	var db *profdb.DB
	if *profDir != "" {
		hl, err := profdb.ParseHalfLife(*halfLife)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		db, err = profdb.OpenAsync(*profDir, profdb.Config{HalfLife: hl, Metrics: reg})
		if err != nil {
			return fmt.Errorf("serve: opening profile database: %w", err)
		}
		defer db.Close()
		fmt.Fprintf(os.Stderr, "selspec serve: profile database at %s (half-life %s)\n", *profDir, orNone(*halfLife))
	} else if *halfLife != "" {
		return fmt.Errorf("serve: -profile-half-life requires -profile-db")
	}

	srv := server.New(server.Config{
		MaxConcurrent:    *maxConc,
		QueueDepth:       *queueDepth,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		StepLimit:        *stepLimit,
		DepthLimit:       *depthLimit,
		DrainTimeout:     *drainT,
		BreakerThreshold: *breakerN,
		BreakerCooldown:  *breakerCool,
		Metrics:          reg,
		Verify:           *verify,
		ProfileDB:        db,
	})

	if *metricsAddr != "" {
		stopOps, err := serveOps(*metricsAddr, reg, *pprofOn)
		if err != nil {
			return fmt.Errorf("serve: metrics listener: %w", err)
		}
		defer stopOps()
	}
	srv.OnListen = func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "selspec serve: listening on %s\n", a)
		if serveListenHook != nil {
			serveListenHook(a)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintln(os.Stderr, "selspec serve: drained cleanly")
	return nil
}

// serveOps binds a separate operations listener carrying /metrics (and,
// when enabled, /debug/pprof/). It lives outside the main server's
// drain lifecycle on purpose: scrapes and profiles must keep working
// while the service winds down, and only stop when the process exits.
func serveOps(addr string, reg *obs.Registry, withPprof bool) (stop func(), err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "selspec serve: metrics on http://%s/metrics", ln.Addr())
	if withPprof {
		fmt.Fprintf(os.Stderr, " (pprof on /debug/pprof/)")
	}
	fmt.Fprintln(os.Stderr)
	hs := &http.Server{Handler: mux}
	go func() { _ = hs.Serve(ln) }()
	return func() { _ = hs.Close() }, nil
}
