package main

import (
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selspec/internal/pipeline"
)

// execMain runs the CLI's run() with the given arguments, capturing
// stdout, and returns (stdout, err). Flags are reset between runs.
func execMain(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldOut := os.Args, os.Stdout
	oldFlags := flag.CommandLine
	defer func() {
		os.Args, os.Stdout = oldArgs, oldOut
		flag.CommandLine = oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("selspec", flag.ContinueOnError)

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"selspec"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.mc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cliProg = `
class A
class B isa A
method m(x@A) { 1; }
method m(x@B) { 2; }
method main() {
  var total := 0;
  var objs := newarray(2);
  aput(objs, 0, new A());
  aput(objs, 1, new B());
  var i := 0;
  while i < 10 { total := total + m(aget(objs, i % 2)); i := i + 1; }
  println("total " + str(total));
  total;
}
`

func TestCLIRunsFile(t *testing.T) {
	path := writeProg(t, cliProg)
	out, err := execMain(t, "-config", "Base", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total 15") || !strings.Contains(out, "=> 15") {
		t.Fatalf("output: %q", out)
	}
}

func TestCLIAllConfigs(t *testing.T) {
	path := writeProg(t, cliProg)
	for _, cfg := range []string{"Base", "Cust", "Cust-MM", "CHA", "Selective"} {
		out, err := execMain(t, "-config", cfg, "-stats", path)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if !strings.Contains(out, "=> 15") {
			t.Fatalf("%s: output %q", cfg, out)
		}
	}
}

func TestCLIExtensionsAndMechanisms(t *testing.T) {
	path := writeProg(t, cliProg)
	for _, extra := range [][]string{
		{"-dispatch", "Global"},
		{"-dispatch", "Tables"},
		{"-no-inline"},
		{"-return-types", "-instantiation", "-config", "CHA"},
		{"-lazy"},
	} {
		out, err := execMain(t, append(extra, path)...)
		if err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		if !strings.Contains(out, "=> 15") {
			t.Fatalf("%v: output %q", extra, out)
		}
	}
}

func TestCLIProfileRoundTrip(t *testing.T) {
	path := writeProg(t, cliProg)
	prof := filepath.Join(t.TempDir(), "prof.json")
	if _, err := execMain(t, "-profile", prof, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(prof); err != nil {
		t.Fatal("profile file not written")
	}
	out, err := execMain(t, "-config", "Selective", "-use-profile", prof, "-threshold", "1", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=> 15") {
		t.Fatalf("output %q", out)
	}
}

func TestCLIBenchmarks(t *testing.T) {
	out, err := execMain(t, "-bench", "Sets", "-config", "CHA")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "overlapping pairs counted") {
		t.Fatalf("output %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{"-config", "Bogus", "x.mc"},
		{"-dispatch", "Bogus", "x.mc"},
		{"-bench", "Nope"},
		{"/does/not/exist.mc"},
	}
	for _, args := range cases {
		if _, err := execMain(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
	// Bad program: load error surfaces.
	path := writeProg(t, "method main() { undefined_thing; }")
	if _, err := execMain(t, path); err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Errorf("err = %v", err)
	}
}

// TestCLIVerifyFlag: -verify accepts the compiled bytecode of a valid
// program under every configuration and both engines (the tree engine
// still compiles and verifies the module).
func TestCLIVerifyFlag(t *testing.T) {
	path := writeProg(t, cliProg)
	for _, cfg := range []string{"Base", "Cust", "Cust-MM", "CHA", "Selective"} {
		out, err := execMain(t, "-config", cfg, "-verify", path)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if !strings.Contains(out, "=> 15") {
			t.Fatalf("%s: output %q", cfg, out)
		}
	}
	if out, err := execMain(t, "-engine", "tree", "-verify", path); err != nil || !strings.Contains(out, "=> 15") {
		t.Fatalf("tree engine: err=%v out=%q", err, out)
	}
}

// --- "selspec check" subcommand -------------------------------------

const brokenProg = `
class A
class B
method f(x@A) { 1; }
method unused(x@A) { 2; }
method main() { var keep := new A(); f(new B()); }
`

func TestCLICheckClean(t *testing.T) {
	path := writeProg(t, cliProg)
	out, err := execMain(t, "check", path)
	if err != nil {
		t.Fatalf("clean program: %v", err)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("clean program printed %q", out)
	}
}

func TestCLICheckBroken(t *testing.T) {
	path := writeProg(t, brokenProg)
	out, err := execMain(t, "check", path)
	if err == nil || !strings.Contains(err.Error(), "3 diagnostics") {
		t.Fatalf("err = %v", err)
	}
	for _, sub := range []string{"[possible-mnu]", "[dead-method]", "[vm-dead-store]", "error: no applicable method"} {
		if !strings.Contains(out, sub) {
			t.Errorf("output missing %q:\n%s", sub, out)
		}
	}
}

func TestCLICheckJSON(t *testing.T) {
	path := writeProg(t, brokenProg)
	out, err := execMain(t, "check", "-format", "json", path)
	if err == nil {
		t.Fatal("expected a diagnostics error")
	}
	var ds []map[string]any
	if jerr := json.Unmarshal([]byte(out), &ds); jerr != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", jerr, out)
	}
	if len(ds) != 3 {
		t.Fatalf("got %d diagnostics, want 3:\n%s", len(ds), out)
	}
	for _, d := range ds {
		for _, key := range []string{"check", "severity", "file", "line", "col", "message"} {
			if _, ok := d[key]; !ok {
				t.Errorf("diagnostic missing %q: %v", key, d)
			}
		}
	}
}

func TestCLICheckBenchmarksClean(t *testing.T) {
	for _, name := range []string{"Richards", "InstSched", "Typechecker", "Compiler", "Sets"} {
		out, err := execMain(t, "check", "-bench", name)
		if err != nil {
			t.Errorf("%s: %v\n%s", name, err, out)
		}
	}
}

func TestCLICheckList(t *testing.T) {
	out, err := execMain(t, "check", "-checks")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"possible-mnu", "ambiguous-dispatch", "dead-method", "arity-mismatch", "useless-specialization"} {
		if !strings.Contains(out, id) {
			t.Errorf("catalog output missing %s:\n%s", id, out)
		}
	}
}

// TestCLICheckExitCodes: findings exit 1, internal analyzer failures
// exit 2 — CI tells "program has issues" from "tool broke" by status.
func TestCLICheckExitCodes(t *testing.T) {
	type exitCoder interface{ ExitCode() int }

	path := writeProg(t, brokenProg)
	_, err := execMain(t, "check", path)
	var ec exitCoder
	if !errors.As(err, &ec) || ec.ExitCode() != 1 {
		t.Errorf("findings: err = %v, want exit code 1", err)
	}

	// Arm a deterministic fault inside the check stage: the contained
	// panic must surface as an internal error, not as findings.
	disarm := pipeline.ArmFaults(pipeline.NewInjector(1, pipeline.FaultRule{
		Stage: pipeline.StageCheck, Action: pipeline.FaultPanic,
	}))
	defer disarm()
	clean := writeProg(t, cliProg)
	_, err = execMain(t, "check", clean)
	if !errors.As(err, &ec) || ec.ExitCode() != 2 {
		t.Errorf("internal fault: err = %v, want exit code 2", err)
	}
}

func TestCLICheckErrors(t *testing.T) {
	cases := [][]string{
		{"check"},                           // no input
		{"check", "-format", "xml", "x.mc"}, // bad format
		{"check", "-bench", "Nope"},         // unknown benchmark
		{"check", "/does/not/exist.mc"},     // missing file
	}
	for _, args := range cases {
		if _, err := execMain(t, args...); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// TestCLICheckGolden keeps the committed allowlist in sync: running
// the checker over the examples/checkdemo fixtures must reproduce
// examples/checkdemo/expected.json byte for byte (CI diffs the same
// pair).
func TestCLICheckGolden(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join(wd, "..", "..")); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()

	want, err := os.ReadFile("examples/checkdemo/expected.json")
	if err != nil {
		t.Fatal(err)
	}
	out, runErr := execMain(t, "check", "-format", "json",
		"examples/checkdemo/arity.mc", "examples/checkdemo/broken.mc")
	if runErr == nil {
		t.Fatal("expected a diagnostics error for the broken fixtures")
	}
	if out != string(want) {
		t.Errorf("checker output diverged from examples/checkdemo/expected.json:\n--- got:\n%s\n--- want:\n%s", out, want)
	}

	cleanOut, cleanErr := execMain(t, "check", "examples/checkdemo/clean.mc")
	if cleanErr != nil || strings.TrimSpace(cleanOut) != "" {
		t.Errorf("clean.mc: err=%v out=%q", cleanErr, cleanOut)
	}
}
