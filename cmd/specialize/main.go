// Command specialize runs the selective specialization algorithm on a
// Mini-Cecil program and prints the resulting specialization directives
// — the compiler-facing output of the paper's Figure 4 algorithm. The
// profile is either gathered by an instrumented training run or read
// from a file written by "selspec -profile".
//
// Usage:
//
//	specialize [flags] program.mc
//	specialize [flags] -bench Typechecker
//
// Flags:
//
//	-threshold N     specialization threshold (default 1000)
//	-use-profile F   read the call-graph profile from F
//	-no-cascade      disable cascading specializations (§3.3 ablation)
//	-no-combine      disable tuple combination (§3.2 ablation)
//	-arcs            also dump the weighted call graph
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"selspec/internal/driver"
	"selspec/internal/profile"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "specialize:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		benchName = flag.String("bench", "", "use an embedded benchmark ("+strings.Join(programs.Names(), ", ")+") instead of a file")
		threshold = flag.Int64("threshold", specialize.DefaultThreshold, "specialization threshold (arc invocations)")
		useProf   = flag.String("use-profile", "", "read a call-graph profile from this file")
		noCascade = flag.Bool("no-cascade", false, "disable cascadeSpecializations")
		noCombine = flag.Bool("no-combine", false, "disable tuple combination")
		dumpArcs  = flag.Bool("arcs", false, "dump the weighted call graph")
		stepLimit = flag.Uint64("step-limit", 0, "abort the training run after this many steps")
	)
	flag.Parse()

	var src string
	var train map[string]int64
	switch {
	case *benchName != "":
		b, ok := programs.ByName(*benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (valid: %s)", *benchName, strings.Join(programs.Names(), ", "))
		}
		src, train = b.Source, b.Train
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	default:
		flag.Usage()
		return fmt.Errorf("expected a program file or -bench name")
	}

	p, err := driver.Load(src)
	if err != nil {
		return err
	}

	var cg *profile.CallGraph
	if *useProf != "" {
		data, err := os.ReadFile(*useProf)
		if err != nil {
			return err
		}
		cg = profile.NewCallGraph(p.Prog)
		if err := cg.UnmarshalInto(data); err != nil {
			return err
		}
	} else {
		cg, err = p.CollectProfile(driver.RunOptions{Overrides: train, StepLimit: *stepLimit})
		if err != nil {
			return fmt.Errorf("training run: %w", err)
		}
	}

	if *dumpArcs {
		fmt.Printf("call graph: %d arcs, total weight %d\n", cg.Len(), cg.TotalWeight())
		for _, a := range cg.Arcs() {
			fmt.Printf("  %s  pass-through=%v\n", a, a.Site.PassThrough)
		}
		fmt.Println()
	}

	res := specialize.Run(p.Prog, cg, specialize.Params{
		Threshold:          *threshold,
		DisableCascade:     *noCascade,
		DisableCombination: *noCombine,
	})
	fmt.Printf("arcs: %d total, %d specializable, %d above threshold %d, %d cascade requests\n",
		res.Stats.ArcsTotal, res.Stats.ArcsSpecializable, res.Stats.ArcsAboveThreshold,
		*threshold, res.Stats.CascadeRequests)
	fmt.Print(res.Describe(p.Prog.H))
	return nil
}
