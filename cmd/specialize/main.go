// Command specialize runs the selective specialization algorithm on a
// Mini-Cecil program and prints the resulting specialization directives
// — the compiler-facing output of the paper's Figure 4 algorithm. The
// profile is either gathered by an instrumented training run or read
// from a file written by "selspec -profile".
//
// Usage:
//
//	specialize [flags] program.mc
//	specialize [flags] -bench Typechecker
//
// Flags:
//
//	-threshold N     specialization threshold (default 1000)
//	-use-profile F   read the call-graph profile from F
//	-from-db D       read the decayed aggregate from a profile database (requires -bench)
//	-no-cascade      disable cascading specializations (§3.3 ablation)
//	-no-combine      disable tuple combination (§3.2 ablation)
//	-arcs            also dump the weighted call graph
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"selspec/internal/driver"
	"selspec/internal/profdb"
	"selspec/internal/profile"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "specialize:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		benchName = flag.String("bench", "", "use an embedded benchmark ("+strings.Join(programs.Names(), ", ")+") instead of a file")
		threshold = flag.Int64("threshold", specialize.DefaultThreshold, "specialization threshold (arc invocations)")
		useProf   = flag.String("use-profile", "", "read a call-graph profile from this file")
		fromDB    = flag.String("from-db", "", "read the aggregated profile for -bench from this profile database directory")
		noCascade = flag.Bool("no-cascade", false, "disable cascadeSpecializations")
		noCombine = flag.Bool("no-combine", false, "disable tuple combination")
		dumpArcs  = flag.Bool("arcs", false, "dump the weighted call graph")
		stepLimit = flag.Uint64("step-limit", 0, "abort the training run after this many steps")
	)
	flag.Parse()

	var src string
	var train map[string]int64
	switch {
	case *benchName != "":
		b, ok := programs.ByName(*benchName)
		if !ok {
			return fmt.Errorf("unknown benchmark %q (valid: %s)", *benchName, strings.Join(programs.Names(), ", "))
		}
		src, train = b.Source, b.Train
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	default:
		flag.Usage()
		return fmt.Errorf("expected a program file or -bench name")
	}

	p, err := driver.Load(src)
	if err != nil {
		return err
	}

	var cg *profile.CallGraph
	switch {
	case *fromDB != "":
		// The database is keyed by benchmark name; a file program has no
		// stable identity to look up.
		if *benchName == "" {
			return fmt.Errorf("-from-db requires -bench")
		}
		if *useProf != "" {
			return fmt.Errorf("-from-db and -use-profile are mutually exclusive")
		}
		// Open replays the WAL synchronously, so the export reflects
		// exactly the acked uploads — same bytes a restart would serve.
		db, err := profdb.Open(*fromDB, profdb.Config{})
		if err != nil {
			return fmt.Errorf("opening profile database: %w", err)
		}
		defer db.Close()
		wire, err := db.Export(*benchName)
		if err != nil {
			return fmt.Errorf("profile database: %w", err)
		}
		data, err := wire.Marshal()
		if err != nil {
			return err
		}
		cg = profile.NewCallGraph(p.Prog)
		if err := cg.UnmarshalInto(data); err != nil {
			return fmt.Errorf("database profile does not match program: %w", err)
		}
	case *useProf != "":
		data, err := os.ReadFile(*useProf)
		if err != nil {
			return err
		}
		cg = profile.NewCallGraph(p.Prog)
		if err := cg.UnmarshalInto(data); err != nil {
			return err
		}
	default:
		cg, err = p.CollectProfile(driver.RunOptions{Overrides: train, StepLimit: *stepLimit})
		if err != nil {
			return fmt.Errorf("training run: %w", err)
		}
	}

	if *dumpArcs {
		fmt.Printf("call graph: %d arcs, total weight %d\n", cg.Len(), cg.TotalWeight())
		for _, a := range cg.Arcs() {
			fmt.Printf("  %s  pass-through=%v\n", a, a.Site.PassThrough)
		}
		fmt.Println()
	}

	res := specialize.Run(p.Prog, cg, specialize.Params{
		Threshold:          *threshold,
		DisableCascade:     *noCascade,
		DisableCombination: *noCombine,
	})
	fmt.Printf("arcs: %d total, %d specializable, %d above threshold %d, %d cascade requests\n",
		res.Stats.ArcsTotal, res.Stats.ArcsSpecializable, res.Stats.ArcsAboveThreshold,
		*threshold, res.Stats.CascadeRequests)
	fmt.Print(res.Describe(p.Prog.H))
	return nil
}
