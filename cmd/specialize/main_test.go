package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func execMain(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldOut := os.Args, os.Stdout
	oldFlags := flag.CommandLine
	defer func() {
		os.Args, os.Stdout = oldArgs, oldOut
		flag.CommandLine = oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("specialize", flag.ContinueOnError)

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"specialize"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

// The paper's Figure 2/3 program with a hot main loop so arcs pass the
// threshold.
const specProg = `
class A
class B isa A
class E isa B
method m2(self@A) { 4; }
method m2(self@B) { 5; }
method m4(self@A, arg2@A) { arg2.m2(); }
method main() {
  var objs := newarray(3);
  aput(objs, 0, new A());
  aput(objs, 1, new B());
  aput(objs, 2, new E());
  var i := 0;
  while i < 900 {
    m4(aget(objs, i % 3), aget(objs, (i + 1) % 3));
    i := i + 1;
  }
  0;
}
`

func TestSpecializeCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.mc")
	if err := os.WriteFile(path, []byte(specProg), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := execMain(t, "-threshold", "100", "-arcs", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"call graph:", "pass-through=", "methods specialized", "m4(@A,@A):"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSpecializeCLIBenchAndAblations(t *testing.T) {
	out, err := execMain(t, "-bench", "Sets", "-threshold", "200")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "methods specialized") {
		t.Fatalf("output: %q", out)
	}
	// Cascade/combination ablations run without error.
	if _, err := execMain(t, "-bench", "Sets", "-threshold", "200", "-no-cascade", "-no-combine"); err != nil {
		t.Fatal(err)
	}
}

func TestSpecializeCLIErrors(t *testing.T) {
	if _, err := execMain(t, "-bench", "Nope"); err == nil {
		t.Error("unknown bench should fail")
	}
	if _, err := execMain(t); err == nil {
		t.Error("missing input should fail")
	}
	if _, err := execMain(t, "/no/such/file.mc"); err == nil {
		t.Error("missing file should fail")
	}
}
