// Command paperbench regenerates the evaluation of the paper (Section
// 4): Tables 1 and 2, both panels of Figures 5 and 6, the dispatch
// elimination ranges, the §3.2 specialization statistics and the
// headline improvement numbers, measured on this reproduction's four
// benchmarks.
//
// Usage:
//
//	paperbench              # full report
//	paperbench -table 1     # just Table 1
//	paperbench -table 2
//	paperbench -figure 5a   # one figure panel
//	paperbench -figure 6b
//	paperbench -stats       # §3.2 specialization statistics
//	paperbench -headline    # abstract-level claims
//	paperbench -quick       # smaller inputs (fast smoke run)
//	paperbench -json        # write the BENCH_paperbench.json perf trajectory
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"selspec/internal/bench"
	"selspec/internal/driver"
	"selspec/internal/gen"
	"selspec/internal/obs"
	"selspec/internal/pipeline"
	"selspec/internal/profdb"
	"selspec/internal/programs"
	"selspec/internal/specialize"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table     = flag.String("table", "", "render one table: 1 or 2")
		figure    = flag.String("figure", "", "render one figure panel: 5a, 5b, 6a, 6b")
		stats     = flag.Bool("stats", false, "render the specialization statistics (§3.2)")
		headline  = flag.Bool("headline", false, "render the headline comparison")
		quick     = flag.Bool("quick", false, "use training-size inputs (fast)")
		exts      = flag.Bool("extensions", false, "measure the post-paper extensions (return types + instantiation analysis)")
		csvOut    = flag.Bool("csv", false, "emit the result matrix as CSV")
		jsonOut   = flag.Bool("json", false, "write the perf trajectory (wall, cycles, dispatches) to -out")
		outPath   = flag.String("out", "BENCH_paperbench.json", "output path for -json")
		threshold = flag.Int64("threshold", specialize.DefaultThreshold, "specialization threshold")
		steplimit = flag.Uint64("steplimit", 0, "per-cell interpreter step budget (0 = unlimited)")
		depth     = flag.Int("depthlimit", 0, "per-cell call-depth limit (0 = interpreter default, negative = unlimited)")
		timeout   = flag.Duration("timeout", 0, "per-cell wall-clock budget, e.g. 30s (0 = none)")
		trace     = flag.Bool("trace", false, "print per-stage span summaries (count, failures, wall time) to stderr at exit")
		engineFl  = flag.String("engine", "", "execution engine: vm (default), tree, or both; vm falls back to tree per cell on unsupported constructs; both measures the two tiers interleaved (requires -json) and writes -out plus -baseline-out")
		baseOut   = flag.String("baseline-out", "BENCH_baseline.json", "output path for the tree-tier trajectory in -engine both mode")
		reps      = flag.Int("reps", 1, "repeat each cell's measured run N times, keeping the fastest wall (counters are deterministic and identical across reps)")
		verify    = flag.Bool("verify", false, "run the bytecode verifier over every cell's compiled module (outside the measured window)")
		generated = flag.Int("generated", 0, "append N generated stress programs (internal/gen) to the grid")
		genSeed   = flag.Uint64("seed", 1, "base seed for -generated (program k uses seed+k)")
		genSize   = flag.Int("gen-classes", 40, "classes per generated program")
		probe     = flag.Bool("gen-probe", false, "run the generator scale probe (hierarchy + dispatch-table cost) instead of the grid; sized by -gen-classes/-seed")
	)
	flag.Parse()

	both := *engineFl == "both"
	var engine driver.Engine
	if !both {
		var err error
		if engine, err = driver.ParseEngine(*engineFl); err != nil {
			return err
		}
	}

	if *probe {
		rep, err := gen.Probe(gen.Config{Seed: *genSeed, Classes: *genSize, Methods: 4 * *genSize})
		if err != nil {
			return err
		}
		if *jsonOut {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			if err := profdb.WriteFileAtomic(*outPath, append(data, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *outPath)
			return nil
		}
		fmt.Println(rep)
		return nil
	}

	// Static tables need no measurements.
	switch *table {
	case "1":
		bench.Table1(os.Stdout)
		return nil
	case "2":
		bench.Table2(os.Stdout)
		return nil
	case "":
	default:
		return fmt.Errorf("unknown table %q", *table)
	}

	// Ctrl-C / SIGTERM flows into every grid cell through the same
	// context plumbing as the per-cell -timeout: cells wind down as
	// contained cancellation failures, the report and failure summary
	// still render, and files in -json mode are never torn mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Generated stress programs ride the grid like the embedded four:
	// program k is fully determined by seed+k, so a failing cell names
	// the exact seed to reproduce it with `selspec gen`.
	var extra []programs.Benchmark
	for k := 0; k < *generated; k++ {
		extra = append(extra, gen.New(gen.Config{
			Seed:    *genSeed + uint64(k),
			Classes: *genSize,
			Methods: 4 * *genSize,
		}).Benchmark())
	}

	ho := bench.Options{
		Quick:      *quick,
		SpecParams: specialize.Params{Threshold: *threshold},
		StepLimit:  *steplimit,
		DepthLimit: *depth,
		Timeout:    *timeout,
		Context:    ctx,
		Engine:     engine,
		Reps:       *reps,
		Verify:     *verify,
		Extra:      extra,
	}

	// -json runs carry the grid's counter snapshot in the trajectory's
	// metrics block; -trace aggregates every Guard boundary into the
	// per-stage summary printed at exit. Either arms the pipeline
	// observer; neither perturbs the measured cells beyond atomic bumps.
	// Pair mode keeps one registry per engine instead (wired inside the
	// both-branch below), so the two trajectories' metrics blocks stay
	// independently collected and byte-comparable.
	var tr *obs.Tracer
	if *jsonOut && !both {
		ho.Metrics = obs.NewRegistry()
	}
	if *trace {
		tr = obs.NewTracer(0)
		defer func() {
			fmt.Fprintln(os.Stderr, "paperbench: per-stage span summary")
			tr.WriteSummary(os.Stderr)
		}()
	}
	if ho.Metrics != nil || tr != nil {
		restore := pipeline.SetObserver(pipeline.NewObserver(ho.Metrics, tr))
		defer restore()
	}

	if *exts {
		if both {
			return fmt.Errorf("-engine both does not support -extensions")
		}
		return bench.Extensions(os.Stdout, ho)
	}

	if both {
		if !*jsonOut {
			return fmt.Errorf("-engine both requires -json")
		}
		hoTree, hoVM := ho, ho
		hoTree.Engine, hoTree.Metrics = driver.EngineTree, obs.NewRegistry()
		hoVM.Engine, hoVM.Metrics = driver.EngineVM, obs.NewRegistry()
		start := time.Now()
		treeSuite, vmSuite, err := bench.RunSuitePair(hoTree, hoVM)
		suiteWall := time.Since(start)
		if err != nil {
			return err
		}
		if err := writeTrajectory(*baseOut, treeSuite, suiteWall, *quick, *reps); err != nil {
			return err
		}
		if err := writeTrajectory(*outPath, vmSuite, suiteWall, *quick, *reps); err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s (suite wall %s)\n", *baseOut, *outPath, suiteWall.Round(time.Millisecond))
		// Surface silent vm→tree fallbacks: a pair run that quietly
		// measured the tree tier twice would make the comparison
		// meaningless, so the count goes to stderr even when zero.
		fbU := hoVM.Metrics.Counter("selspec_vm_fallback_total", obs.Label{Key: "reason", Value: "unsupported-node"}).Value()
		fbI := hoVM.Metrics.Counter("selspec_vm_fallback_total", obs.Label{Key: "reason", Value: "internal"}).Value()
		fmt.Fprintf(os.Stderr, "paperbench: vm fallbacks: %d unsupported-node, %d internal\n", fbU, fbI)
		if treeSuite.Failed() || vmSuite.Failed() {
			treeSuite.FailureSummary(os.Stderr)
			vmSuite.FailureSummary(os.Stderr)
			return fmt.Errorf("grid cells failed: %d (tree), %d (vm)",
				len(treeSuite.Failures), len(vmSuite.Failures))
		}
		return nil
	}

	start := time.Now()
	suite, err := bench.RunSuite(ho)
	suiteWall := time.Since(start)
	if err != nil {
		return err
	}

	switch {
	case *jsonOut:
		if err := writeTrajectory(*outPath, suite, suiteWall, *quick, *reps); err != nil {
			return err
		}
		fmt.Printf("wrote %s (suite wall %s)\n", *outPath, suiteWall.Round(time.Millisecond))
	case *csvOut:
		if err := suite.CSV(os.Stdout); err != nil {
			return err
		}
	case *figure == "5a":
		suite.Figure5a(os.Stdout)
	case *figure == "5b":
		suite.Figure5b(os.Stdout)
	case *figure == "6a":
		suite.Figure6a(os.Stdout)
	case *figure == "6b":
		suite.Figure6b(os.Stdout)
	case *figure != "":
		return fmt.Errorf("unknown figure %q", *figure)
	case *stats:
		suite.SpecStats(os.Stdout)
	case *headline:
		suite.Headline(os.Stdout)
	default:
		suite.Report(os.Stdout)
	}

	// Contained per-cell failures degrade the report rather than abort
	// it, but the process still exits non-zero so CI notices.
	if suite.Failed() {
		suite.FailureSummary(os.Stderr)
		return fmt.Errorf("%d of %d grid cells failed", len(suite.Failures),
			len(suite.Failures)+countResults(suite))
	}
	return nil
}

func writeTrajectory(path string, s *bench.Suite, wall time.Duration, quick bool, reps int) error {
	// Render to memory first, then publish atomically: a crash mid-run
	// leaves the previous trajectory intact instead of a torn JSON file
	// that downstream tooling would choke on.
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, wall, quick, reps); err != nil {
		return err
	}
	return profdb.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

func countResults(s *bench.Suite) int {
	n := 0
	for _, row := range s.Results {
		for _, r := range row {
			if r != nil {
				n++
			}
		}
	}
	return n
}
