package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selspec/internal/bench"
)

func execMain(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldOut := os.Args, os.Stdout
	oldFlags := flag.CommandLine
	defer func() {
		os.Args, os.Stdout = oldArgs, oldOut
		flag.CommandLine = oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("paperbench", flag.ContinueOnError)

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"paperbench"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<22)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestPaperbenchTables(t *testing.T) {
	out, err := execMain(t, "-table", "1")
	if err != nil || !strings.Contains(out, "Selective") {
		t.Fatalf("table 1: %v %q", err, out)
	}
	out, err = execMain(t, "-table", "2")
	if err != nil || !strings.Contains(out, "Richards") {
		t.Fatalf("table 2: %v %q", err, out)
	}
	if _, err := execMain(t, "-table", "9"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestPaperbenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_paperbench.json")
	out, err := execMain(t, "-quick", "-json", "-out", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote "+path) {
		t.Fatalf("missing confirmation line:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var traj bench.JSONTrajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !traj.Quick {
		t.Error("quick flag not recorded")
	}
	if traj.SuiteWallNS <= 0 {
		t.Errorf("suite_wall_ns = %d, want > 0", traj.SuiteWallNS)
	}
	// 4 benchmarks × all configs, every row populated.
	if len(traj.Results) == 0 || len(traj.Results)%4 != 0 {
		t.Fatalf("got %d result rows", len(traj.Results))
	}
	if traj.Results[0].Benchmark != "Richards" || traj.Results[0].Config != "Base" {
		t.Errorf("first row = %s/%s, want Richards/Base",
			traj.Results[0].Benchmark, traj.Results[0].Config)
	}
	for _, r := range traj.Results {
		if r.Cycles == 0 || r.Dispatches == 0 || r.WallNS <= 0 {
			t.Errorf("%s/%s: empty measurements %+v", r.Benchmark, r.Config, r)
		}
	}
}

// TestPaperbenchVerify: -verify runs the whole quick grid with the
// bytecode verifier armed on every cell; any verifier rejection would
// fail the suite.
func TestPaperbenchVerify(t *testing.T) {
	out, err := execMain(t, "-quick", "-verify", "-headline")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Headline comparison") {
		t.Fatalf("headline output:\n%s", out)
	}
}

func TestPaperbenchFigures(t *testing.T) {
	// One quick figure run exercises the suite plumbing end to end.
	out, err := execMain(t, "-quick", "-figure", "5a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 5 (left)") || !strings.Contains(out, "Richards") {
		t.Fatalf("figure 5a output:\n%s", out)
	}
	if _, err := execMain(t, "-quick", "-figure", "9z"); err == nil {
		t.Error("unknown figure should fail")
	}
}
