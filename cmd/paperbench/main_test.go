package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

func execMain(t *testing.T, args ...string) (string, error) {
	t.Helper()
	oldArgs, oldOut := os.Args, os.Stdout
	oldFlags := flag.CommandLine
	defer func() {
		os.Args, os.Stdout = oldArgs, oldOut
		flag.CommandLine = oldFlags
	}()
	flag.CommandLine = flag.NewFlagSet("paperbench", flag.ContinueOnError)

	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	os.Args = append([]string{"paperbench"}, args...)
	runErr := run()
	w.Close()
	buf := make([]byte, 1<<22)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestPaperbenchTables(t *testing.T) {
	out, err := execMain(t, "-table", "1")
	if err != nil || !strings.Contains(out, "Selective") {
		t.Fatalf("table 1: %v %q", err, out)
	}
	out, err = execMain(t, "-table", "2")
	if err != nil || !strings.Contains(out, "Richards") {
		t.Fatalf("table 2: %v %q", err, out)
	}
	if _, err := execMain(t, "-table", "9"); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestPaperbenchFigures(t *testing.T) {
	// One quick figure run exercises the suite plumbing end to end.
	out, err := execMain(t, "-quick", "-figure", "5a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 5 (left)") || !strings.Contains(out, "Richards") {
		t.Fatalf("figure 5a output:\n%s", out)
	}
	if _, err := execMain(t, "-quick", "-figure", "9z"); err == nil {
		t.Error("unknown figure should fail")
	}
}
