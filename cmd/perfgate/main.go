// perfgate is the CI perf-trajectory gate for the bytecode tier: it
// compares two paperbench -json trajectories — a tree-interpreter
// baseline and a VM candidate from the same pair-mode run — and fails
// unless every benchmark's geometric-mean steps/sec speedup clears the
// committed floor AND the two tiers agree exactly on every
// deterministic observable (steps, cycles, dispatches, metrics block).
// The floor lives in a one-line file (default .github/perf-floor.txt)
// so raising it is an ordinary reviewed diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"selspec/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "tree-tier trajectory JSON")
	candidate := flag.String("candidate", "BENCH_vm.json", "vm-tier trajectory JSON")
	floorPath := flag.String("floor", ".github/perf-floor.txt", "file holding the minimum per-benchmark geomean speedup")
	flag.Parse()

	if err := gate(os.Stdout, *baseline, *candidate, *floorPath); err != nil {
		fmt.Fprintln(os.Stderr, "perfgate: FAIL:", err)
		os.Exit(1)
	}
}

func loadTrajectory(path string) (*bench.JSONTrajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t bench.JSONTrajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &t, nil
}

// readFloor parses the floor file: one positive decimal, with blank
// lines and #-comments ignored so the file can document itself.
func readFloor(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f, err := strconv.ParseFloat(line, 64)
		if err != nil || f <= 0 {
			return 0, fmt.Errorf("%s: bad floor %q", path, line)
		}
		return f, nil
	}
	return 0, fmt.Errorf("%s: no floor value found", path)
}

type cellKey struct{ bench, cfg string }

func gate(w io.Writer, baselinePath, candidatePath, floorPath string) error {
	floor, err := readFloor(floorPath)
	if err != nil {
		return err
	}
	tree, err := loadTrajectory(baselinePath)
	if err != nil {
		return err
	}
	vm, err := loadTrajectory(candidatePath)
	if err != nil {
		return err
	}

	// A contained benchmark fault in either tier means the trajectory
	// is not a full grid; gate on the whole grid or nothing.
	if len(tree.Failures) > 0 || len(vm.Failures) > 0 {
		return fmt.Errorf("trajectories contain failures: baseline %d, candidate %d",
			len(tree.Failures), len(vm.Failures))
	}

	// The observability contract: the two tiers' metrics blocks are
	// byte-identical (same series, same cumulative values).
	if len(tree.Metrics) != len(vm.Metrics) {
		return fmt.Errorf("metrics blocks differ in length: baseline %d, candidate %d",
			len(tree.Metrics), len(vm.Metrics))
	}
	for i := range tree.Metrics {
		if tree.Metrics[i] != vm.Metrics[i] {
			return fmt.Errorf("metrics diverged at %q: baseline %d, candidate %d",
				tree.Metrics[i].Name, tree.Metrics[i].Value, vm.Metrics[i].Value)
		}
	}

	byKey := make(map[cellKey]bench.JSONResult, len(vm.Results))
	for _, r := range vm.Results {
		byKey[cellKey{r.Benchmark, r.Config}] = r
	}

	// Per-benchmark log-sum of per-cell speedups, for the geomean.
	logSum := make(map[string]float64)
	cells := make(map[string]int)
	var order []string
	for _, tr := range tree.Results {
		if tr.Engine != "tree" {
			return fmt.Errorf("%s/%s: baseline ran on %q, want tree", tr.Benchmark, tr.Config, tr.Engine)
		}
		vr, ok := byKey[cellKey{tr.Benchmark, tr.Config}]
		if !ok {
			return fmt.Errorf("%s/%s: cell missing from candidate", tr.Benchmark, tr.Config)
		}
		if vr.Engine != "vm" {
			return fmt.Errorf("%s/%s: candidate ran on %q, want vm (fallback?)", tr.Benchmark, tr.Config, vr.Engine)
		}
		// Deterministic observables must match cell-for-cell: a perf win
		// bought by doing different work is a correctness bug, not a win.
		if vr.Steps != tr.Steps || vr.Cycles != tr.Cycles ||
			vr.Dispatches != tr.Dispatches || vr.VersionSelects != tr.VersionSelects {
			return fmt.Errorf("%s/%s: deterministic counters diverged:\n  tree: steps=%d cycles=%d dispatches=%d vsel=%d\n  vm:   steps=%d cycles=%d dispatches=%d vsel=%d",
				tr.Benchmark, tr.Config,
				tr.Steps, tr.Cycles, tr.Dispatches, tr.VersionSelects,
				vr.Steps, vr.Cycles, vr.Dispatches, vr.VersionSelects)
		}
		if tr.StepsPerSec <= 0 || vr.StepsPerSec <= 0 {
			return fmt.Errorf("%s/%s: non-positive steps/sec", tr.Benchmark, tr.Config)
		}
		if _, seen := logSum[tr.Benchmark]; !seen {
			order = append(order, tr.Benchmark)
		}
		logSum[tr.Benchmark] += math.Log(vr.StepsPerSec / tr.StepsPerSec)
		cells[tr.Benchmark]++
	}
	if len(order) == 0 {
		return fmt.Errorf("baseline %s holds no result cells", baselinePath)
	}

	var failed []string
	fmt.Fprintf(w, "perfgate: floor %.2fx (vm vs tree, geomean steps/sec across configs)\n", floor)
	for _, name := range order {
		speedup := math.Exp(logSum[name] / float64(cells[name]))
		status := "ok"
		if speedup < floor {
			status = "BELOW FLOOR"
			failed = append(failed, fmt.Sprintf("%s %.2fx", name, speedup))
		}
		fmt.Fprintf(w, "  %-14s %6.2fx  (%d cells)  %s\n", name, speedup, cells[name], status)
	}
	if len(failed) > 0 {
		return fmt.Errorf("speedup below %.2fx floor: %s", floor, strings.Join(failed, ", "))
	}
	return nil
}
