package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"selspec/internal/bench"
)

// write a trajectory (and floor file) into a temp dir and run gate.
func runGate(t *testing.T, tree, vm bench.JSONTrajectory, floor string) error {
	t.Helper()
	dir := t.TempDir()
	paths := map[string]any{"tree.json": tree, "vm.json": vm}
	for name, v := range paths {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fp := filepath.Join(dir, "floor.txt")
	if err := os.WriteFile(fp, []byte(floor), 0o644); err != nil {
		t.Fatal(err)
	}
	return gate(io.Discard, filepath.Join(dir, "tree.json"), filepath.Join(dir, "vm.json"), fp)
}

func cell(benchName, cfg, engine string, sps float64, steps uint64) bench.JSONResult {
	return bench.JSONResult{
		Benchmark: benchName, Config: cfg, Engine: engine,
		StepsPerSec: sps, Steps: steps, Cycles: steps * 10, Dispatches: steps / 2,
	}
}

func pair(ratio float64) (bench.JSONTrajectory, bench.JSONTrajectory) {
	metrics := []bench.JSONMetric{{Name: "selspec_dispatch_total", Value: 42}}
	tree := bench.JSONTrajectory{
		Results: []bench.JSONResult{
			cell("Richards", "Base", "tree", 1000, 500),
			cell("Richards", "CHA", "tree", 2000, 400),
		},
		Metrics: metrics,
	}
	vm := bench.JSONTrajectory{
		Results: []bench.JSONResult{
			cell("Richards", "Base", "vm", 1000*ratio, 500),
			cell("Richards", "CHA", "vm", 2000*ratio, 400),
		},
		Metrics: append([]bench.JSONMetric{}, metrics...),
	}
	return tree, vm
}

func TestGatePassesAboveFloor(t *testing.T) {
	tree, vm := pair(5.0)
	if err := runGate(t, tree, vm, "# floor\n3.0\n"); err != nil {
		t.Fatalf("gate: %v", err)
	}
}

func TestGateFailsBelowFloor(t *testing.T) {
	tree, vm := pair(2.0)
	err := runGate(t, tree, vm, "3.0\n")
	if err == nil || !strings.Contains(err.Error(), "below 3.00x floor") {
		t.Fatalf("gate: %v, want below-floor failure", err)
	}
}

func TestGateFailsOnCounterDivergence(t *testing.T) {
	tree, vm := pair(5.0)
	vm.Results[1].Steps++ // the tiers did different work
	err := runGate(t, tree, vm, "3.0\n")
	if err == nil || !strings.Contains(err.Error(), "deterministic counters diverged") {
		t.Fatalf("gate: %v, want counter-divergence failure", err)
	}
}

func TestGateFailsOnMetricsDivergence(t *testing.T) {
	tree, vm := pair(5.0)
	vm.Metrics[0].Value++
	err := runGate(t, tree, vm, "3.0\n")
	if err == nil || !strings.Contains(err.Error(), "metrics diverged") {
		t.Fatalf("gate: %v, want metrics-divergence failure", err)
	}
}

func TestGateFailsOnFallbackEngine(t *testing.T) {
	tree, vm := pair(5.0)
	vm.Results[0].Engine = "tree" // silent fallback must not pass the gate
	err := runGate(t, tree, vm, "3.0\n")
	if err == nil || !strings.Contains(err.Error(), "fallback") {
		t.Fatalf("gate: %v, want fallback failure", err)
	}
}

func TestGateFailsOnContainedFailures(t *testing.T) {
	tree, vm := pair(5.0)
	vm.Failures = []bench.Failure{{Benchmark: "Richards"}}
	err := runGate(t, tree, vm, "3.0\n")
	if err == nil || !strings.Contains(err.Error(), "failures") {
		t.Fatalf("gate: %v, want failures rejection", err)
	}
}

func TestReadFloorRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"empty":    "# only comments\n",
		"negative": "-1\n",
		"words":    "fast\n",
	} {
		fp := filepath.Join(dir, name)
		if err := os.WriteFile(fp, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readFloor(fp); err == nil {
			t.Errorf("%s: readFloor accepted %q", name, content)
		}
	}
}
