// Package selspec is a from-scratch Go reproduction of
//
//	Jeffrey Dean, Craig Chambers, and David Grove.
//	"Selective Specialization for Object-Oriented Languages."
//	PLDI 1995.
//
// It contains a complete pipeline for a small Cecil-like multi-method
// object-oriented language ("Mini-Cecil"): front end (internal/lang),
// class hierarchy and ApplicableClasses analysis (internal/hier), a
// tree IR with pass-through call-site information (internal/ir), an
// optimizing middle end implementing the paper's five compiler
// configurations (internal/opt), the selective specialization algorithm
// itself (internal/specialize), profile collection (internal/profile),
// runtime dispatch mechanisms (internal/dispatch), an instrumented
// interpreter (internal/interp), the four benchmark programs of the
// paper's Table 2 rewritten in Mini-Cecil (internal/programs), and the
// harness that regenerates every table and figure of the evaluation
// (internal/bench).
//
// See README.md for a guided tour, DESIGN.md for the system inventory
// and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=. -benchmem
package selspec
